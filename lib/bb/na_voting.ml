(* Network-agnostic voting (after Constantinescu–Dufay–Ghinea–Wattenhofer,
   arXiv 2410.19721): one protocol that must survive both a synchronous
   network (tolerating [t_s] Byzantine nodes) and an asynchronous one
   (tolerating [t_a <= t_s]), with validity achievable exactly when
   N > max{3t, 2t + 2B_G + C_G} for the network's tolerance t.

   Structure (scaled down to the simulator's round model):

   - Synchronous path, clocked in multiples of the timeout [sync_delta]
     (the realisation of the known bound delta_t — under an asynchronous
     network the timeouts still fire but their thresholds may not be met):
       round 0            broadcast Inp(input)
       round delta        broadcast Vote(v): the plurality of received
                          inputs if >= n - t_s arrived, else bottom
       round 2*delta      broadcast Comm(v) if some value has >= n - t_s
                          votes, else Comm(bottom)
       round 3*delta      decide v and broadcast Fin(v) on >= n - t_s
                          commits for v
   - Asynchronous fallback, threshold-clocked (no delay bound needed):
       Lock(v)            on >= t_s + t_a + 1 commits for v (the sync
                          path's progress certificate, adopted into the
                          fallback's vote priority)
       FbVote(w)          once, at the first round >= 3*delta with
                          >= n - t_a inputs received; w is the first of:
                          own decision, own lock, a lock certified by
                          >= t_a + 1 Lock messages, own non-bottom
                          commit, the plurality of received inputs
       decide v           on >= n - t_a fallback votes for v
   - Fin adoption (both paths): decide v on >= t_s + 1 Fin(v) — safe
     while f <= t_s because some Fin is then from an honest decider, and
     exactly the lever a (t_s + 1)-strong adversary pulls to break cells
     beyond the tolerance.

   Safety of the commit threshold needs n > 2*t_s + t_a (two conflicting
   commit quorums would intersect in an honest voter); [init] rejects a
   system smaller than that.  Decided nodes keep
   participating in the fallback (their FbVote carries the decided
   value), so a partial synchronous-path decision — possible around GST —
   still drives the fallback quorum to the same value.

   Timeouts make states time-triggered, so [inert] is conservatively
   false: a stalled run is a real stall, never a fast-forward. *)

open Vv_sim

type kind = Inp | Vote | Comm | Lock | FbVote | Fin

type msg = { kind : kind; value : int }

(* "No message recorded from this sender yet" — distinct from
   [Bb_intf.bottom], which is a legal message payload. *)
let none = min_int

module type Params = sig
  val t_s : int
  (** synchronous-network fault tolerance *)

  val t_a : int
  (** asynchronous-network fault tolerance, [t_a <= t_s] *)

  val sync_delta : int
  (** the timeout realising the synchronous path's delta_t, in engine
      rounds *)
end

module Make (P : Params) :
  Protocol.S
    with type input = int
     and type output = int
     and type msg = msg = struct
  let () =
    if P.t_a < 0 || P.t_s < P.t_a then
      invalid_arg "Na_voting: need 0 <= t_a <= t_s";
    if P.sync_delta < 1 then invalid_arg "Na_voting: sync_delta must be >= 1"

  type input = int
  type output = int

  type nonrec msg = msg

  type state = {
    input : int;
    (* first value received per sender, per message kind; [none] = none *)
    inp : int array;
    vote : int array;
    comm : int array;
    lock_msg : int array;
    fbvote : int array;
    fin : int array;
    mutable lock : int;  (* own lock, [none] until set *)
    mutable decided : int;  (* stable once <> [none] *)
    mutable vote_sent : bool;
    mutable comm_sent : bool;
    mutable lock_sent : bool;
    mutable fbvote_sent : bool;
    mutable fin_sent : bool;
  }

  let name = Fmt.str "na-voting(ts=%d,ta=%d,delta=%d)" P.t_s P.t_a P.sync_delta

  let equal_msg a b = a.kind = b.kind && a.value = b.value

  let delta = P.sync_delta

  (* --- tallies over the per-sender arrays (no allocation) --- *)

  let received arr =
    let c = ref 0 in
    Array.iter (fun v -> if v <> none then incr c) arr;
    !c

  let count_of arr v =
    let c = ref 0 in
    Array.iter (fun w -> if w = v then incr c) arr;
    !c

  (* Plurality over recorded values, [Bb_intf.bottom] excluded; highest
     count wins, ties to the smaller value (a strict total order, so the
     scan order cannot matter). *)
  let plurality arr =
    let n = Array.length arr in
    let bv = ref Bb_intf.bottom and bc = ref 0 in
    for i = 0 to n - 1 do
      let v = arr.(i) in
      if v <> none && v <> Bb_intf.bottom then begin
        (* count v only at its first occurrence *)
        let rec first j = if arr.(j) = v then j else first (j + 1) in
        if first 0 = i then begin
          let c = count_of arr v in
          if c > !bc || (c = !bc && v < !bv) then begin
            bv := v;
            bc := c
          end
        end
      end
    done;
    (!bv, !bc)

  (* The unique non-bottom value with at least [threshold] recorded
     supporters, or [none].  (For thresholds above n/2 uniqueness is
     automatic; for lower ones the plurality's strict order makes the
     answer deterministic.) *)
  let supported arr ~threshold =
    let v, c = plurality arr in
    if v <> Bb_intf.bottom && c >= threshold then v else none

  let init (ctx : Protocol.ctx) input ~outbox =
    if ctx.Protocol.n <= (2 * P.t_s) + P.t_a then
      invalid_arg
        (Fmt.str "%s: need n > 2*t_s + t_a (n = %d)" name ctx.Protocol.n);
    Outbox.broadcast outbox { kind = Inp; value = input };
    {
      input;
      inp = Array.make ctx.Protocol.n none;
      vote = Array.make ctx.Protocol.n none;
      comm = Array.make ctx.Protocol.n none;
      lock_msg = Array.make ctx.Protocol.n none;
      fbvote = Array.make ctx.Protocol.n none;
      fin = Array.make ctx.Protocol.n none;
      lock = none;
      decided = none;
      vote_sent = false;
      comm_sent = false;
      lock_sent = false;
      fbvote_sent = false;
      fin_sent = false;
    }

  let absorb st ~inbox =
    for i = 0 to Inbox.length inbox - 1 do
      let src = Inbox.src inbox i in
      let { kind; value } = Inbox.msg inbox i in
      let arr =
        match kind with
        | Inp -> st.inp
        | Vote -> st.vote
        | Comm -> st.comm
        | Lock -> st.lock_msg
        | FbVote -> st.fbvote
        | Fin -> st.fin
      in
      (* first message per sender per kind wins *)
      if arr.(src) = none then arr.(src) <- value
    done

  let decide st ~outbox v =
    if st.decided = none then begin
      st.decided <- v;
      if not st.fin_sent then begin
        st.fin_sent <- true;
        Outbox.broadcast outbox { kind = Fin; value = v }
      end
    end

  let step (ctx : Protocol.ctx) st ~round ~inbox ~outbox =
    let n = ctx.Protocol.n in
    absorb st ~inbox;
    (* synchronous path: timeout-clocked sends *)
    if round = delta && not st.vote_sent then begin
      st.vote_sent <- true;
      let v =
        if received st.inp >= n - P.t_s then fst (plurality st.inp)
        else Bb_intf.bottom
      in
      Outbox.broadcast outbox { kind = Vote; value = v }
    end;
    if round = 2 * delta && not st.comm_sent then begin
      st.comm_sent <- true;
      let v =
        match supported st.vote ~threshold:(n - P.t_s) with
        | v when v <> none -> v
        | _ -> Bb_intf.bottom
      in
      Outbox.broadcast outbox { kind = Comm; value = v }
    end;
    if round >= 3 * delta then begin
      match supported st.comm ~threshold:(n - P.t_s) with
      | v when v <> none -> decide st ~outbox v
      | _ -> ()
    end;
    (* asynchronous fallback: threshold-clocked *)
    (match supported st.comm ~threshold:(P.t_s + P.t_a + 1) with
    | v when v <> none && not st.lock_sent ->
        st.lock_sent <- true;
        st.lock <- v;
        Outbox.broadcast outbox { kind = Lock; value = v }
    | _ -> ());
    if
      round >= 3 * delta && (not st.fbvote_sent)
      && received st.inp >= n - P.t_a
    then begin
      st.fbvote_sent <- true;
      let certified_lock = supported st.lock_msg ~threshold:(P.t_a + 1) in
      let own_comm =
        if st.comm_sent then
          let c = st.comm.(ctx.Protocol.me) in
          if c = Bb_intf.bottom then none else c
        else none
      in
      let w =
        if st.decided <> none then st.decided
        else if st.lock <> none then st.lock
        else if certified_lock <> none then certified_lock
        else if own_comm <> none then own_comm
        else fst (plurality st.inp)
      in
      Outbox.broadcast outbox { kind = FbVote; value = w }
    end;
    (match supported st.fbvote ~threshold:(n - P.t_a) with
    | v when v <> none -> decide st ~outbox v
    | _ -> ());
    (match supported st.fin ~threshold:(P.t_s + 1) with
    | v when v <> none -> decide st ~outbox v
    | _ -> ());
    st

  let output st = if st.decided = none then None else Some st.decided

  let phase st =
    if st.decided <> none then "decided"
    else if st.fbvote_sent then "fallback"
    else if st.comm_sent then "commit"
    else if st.vote_sent then "vote"
    else "input"

  (* Time-triggered sends (the delta timeouts) mean an undecided state is
     never a provable no-op. *)
  let inert _ = false
end
