(* Dolev-Strong authenticated Byzantine Broadcast.

   The designated sender signs its value and broadcasts it.  A message
   arriving at local round r is accepted when it carries a valid chain of
   exactly r distinct signatures starting with the sender's.  On first
   acceptance of a new value a node adds its own signature and relays
   (relaying stops once two distinct values are known — a proof of sender
   equivocation — and after round t, whose chains cannot grow to t+1 valid
   signatures in time).  After round t+1 a node outputs the unique accepted
   value, or bottom.

   Tolerates any number of faults for agreement (t < n) given unforgeable
   signatures; runs in t+1 rounds. *)

open Vv_sim

let name = "dolev-strong"

type msg = int Auth.chain

let equal_msg = Auth.equal_chain Int.equal

type state = {
  sender : Types.node_id;
  extracted : int list;  (* accepted values, at most 2 kept *)
  done_ : bool;
}

let rounds ~n:_ ~t = t + 1

let start ~n:_ ~t:_ ~me ~sender ~value ~outbox =
  match value with
  | Some v when me = sender ->
      if v < 0 then invalid_arg "Dolev_strong.start: negative value";
      Outbox.broadcast outbox (Auth.initial ~sender v);
      { sender; extracted = [ v ]; done_ = false }
  | None when me <> sender -> { sender; extracted = []; done_ = false }
  | Some _ -> invalid_arg "Dolev_strong.start: value supplied at non-sender"
  | None -> invalid_arg "Dolev_strong.start: sender has no value"

let step ~n:_ ~t ~me st ~lround ~inbox ~outbox =
  if st.done_ then st
  else begin
    let extracted = ref st.extracted in
    for i = 0 to inbox.Bb_intf.len - 1 do
      let chain = inbox.Bb_intf.msgs.(i) in
      let v = chain.Auth.value in
      let fresh = not (List.exists (fun (x : int) -> x = v) !extracted) in
      let want_more = List.compare_length_with !extracted 2 < 0 in
      if
        fresh && want_more && v >= 0
        && Auth.valid chain ~sender:st.sender ~len:lround
        && not (Auth.mem_signer chain me)
      then begin
        extracted := !extracted @ [ v ];
        (* Relaying after round t is pointless: the chain could not reach
           the required t+1 signatures by the last round. *)
        if lround <= t then
          Outbox.broadcast outbox (Auth.extend chain ~signer:me)
      end
    done;
    let done_ = lround >= t + 1 in
    { st with extracted = !extracted; done_ }
  end

let result st =
  match st.extracted with [ v ] -> v | [] | _ :: _ -> Bb_intf.bottom
