(** Exponential-Information-Gathering Byzantine Broadcast (unauthenticated).

    Sender round plus [t+1] exchange rounds over repetition-free relay
    paths, resolved bottom-up by strict majority; the tight unauthenticated
    bound [n > 3t] at exponential message cost (guarded by
    {!max_tree_size}). Implements {!Bb_intf.S}. *)

val name : string
val max_tree_size : int

type msg =
  | Init of int  (** the sender's round-0 value *)
  | Report of { path : Vv_sim.Types.node_id list; value : int }

val equal_msg : msg -> msg -> bool

val compare_msg : msg -> msg -> int
(** Total order: [Init] before [Report]; [Report] by path (lexicographic),
    then value.  The deterministic relay emission order. *)

type state

val tree_size : n:int -> t:int -> int
(** Number of repetition-free paths of length [<= t+1] over [n] ids. *)

val rounds : n:int -> t:int -> int
(** [t + 2]. *)

val start :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  sender:Vv_sim.Types.node_id ->
  value:int option ->
  outbox:msg Vv_sim.Outbox.t ->
  state
(** Raises [Invalid_argument] when the EIG tree would exceed
    {!max_tree_size}. *)

val step :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  state ->
  lround:int ->
  inbox:msg Bb_intf.inbox ->
  outbox:msg Vv_sim.Outbox.t ->
  state

val result : state -> int
