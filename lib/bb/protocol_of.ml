(* Wrap a Byzantine Broadcast sub-machine as a full engine protocol, for
   direct testing and benchmarking of the substrate.

   Sub-machines are specified in lock-step local rounds where every message
   sent in local round r arrives by local round r+1.  To run them under a
   bounded delay delta > 1 the wrapper batches engine rounds: local round r
   spans engine rounds (r-1)*delta+1 .. r*delta, buffering arrivals and
   stepping the sub-machine at the end of each batch — the standard
   timeout-per-round realisation of a synchronous protocol. *)

open Vv_sim

type bb_input = { sender : Types.node_id; value : int option }

module Make (Sub : Bb_intf.S) :
  Protocol.S
    with type input = bb_input
     and type msg = Sub.msg
     and type output = int = struct
  type input = bb_input
  type msg = Sub.msg
  type output = int

  type state = {
    sub : Sub.state;
    delta : int;
    total_engine_rounds : int;
    buffer : (Types.node_id * msg) list;  (* arrivals of the current batch, reversed *)
    finished : bool;
  }

  let name = Sub.name

  let init (ctx : Protocol.ctx) { sender; value } =
    let delta =
      match ctx.delta with
      | Some d -> d
      | None ->
          invalid_arg
            (Sub.name ^ ": requires a known delay bound (synchronous network)")
    in
    let sub, out = Sub.start ~n:ctx.n ~t:ctx.t ~me:ctx.me ~sender ~value in
    ( {
        sub;
        delta;
        total_engine_rounds = Sub.rounds ~n:ctx.n ~t:ctx.t * delta;
        buffer = [];
        finished = false;
      },
      out )

  let step (ctx : Protocol.ctx) st ~round ~inbox =
    if st.finished then (st, [])
    else
      let buffer = List.rev_append inbox st.buffer in
      if round mod st.delta = 0 then begin
        let lround = round / st.delta in
        let sub, out =
          Sub.step ~n:ctx.n ~t:ctx.t ~me:ctx.me st.sub ~lround
            ~inbox:(List.rev buffer)
        in
        ( { st with sub; buffer = []; finished = round >= st.total_engine_rounds },
          out )
      end
      else ({ st with buffer }, [])

  let output st = if st.finished then Some (Sub.result st.sub) else None
  let phase st = if st.finished then "done" else "broadcast"
end
