(* Wrap a Byzantine Broadcast sub-machine as a full engine protocol, for
   direct testing and benchmarking of the substrate.

   Sub-machines are specified in lock-step local rounds where every message
   sent in local round r arrives by local round r+1.  To run them under a
   bounded delay delta > 1 the wrapper batches engine rounds: local round r
   spans engine rounds (r-1)*delta+1 .. r*delta, buffering arrivals and
   stepping the sub-machine at the end of each batch — the standard
   timeout-per-round realisation of a synchronous protocol.  The engine's
   outbox is handed straight through to the sub-machine (its message type
   is the wrapper's message type), so the wrapper adds no per-send cost. *)

open Vv_sim

type bb_input = { sender : Types.node_id; value : int option }

module Make (Sub : Bb_intf.S) :
  Protocol.S
    with type input = bb_input
     and type msg = Sub.msg
     and type output = int = struct
  type input = bb_input
  type msg = Sub.msg
  type output = int

  type state = {
    sub : Sub.state;
    delta : int;
    total_engine_rounds : int;
    buffer : msg Bb_intf.inbox;  (* arrivals of the current batch *)
    finished : bool;
  }

  let name = Sub.name
  let equal_msg = Sub.equal_msg

  let init (ctx : Protocol.ctx) { sender; value } ~outbox =
    let delta =
      match ctx.delta with
      | Some d -> d
      | None ->
          invalid_arg
            (Sub.name ^ ": requires a known delay bound (synchronous network)")
    in
    let sub = Sub.start ~n:ctx.n ~t:ctx.t ~me:ctx.me ~sender ~value ~outbox in
    {
      sub;
      delta;
      total_engine_rounds = Sub.rounds ~n:ctx.n ~t:ctx.t * delta;
      buffer = Bb_intf.inbox_create ();
      finished = false;
    }

  let step (ctx : Protocol.ctx) st ~round ~inbox ~outbox =
    if st.finished then st
    else begin
      for i = 0 to Inbox.length inbox - 1 do
        Bb_intf.inbox_push st.buffer (Inbox.src inbox i) (Inbox.msg inbox i)
      done;
      if round mod st.delta = 0 then begin
        let lround = round / st.delta in
        let sub =
          Sub.step ~n:ctx.n ~t:ctx.t ~me:ctx.me st.sub ~lround ~inbox:st.buffer
            ~outbox
        in
        Bb_intf.inbox_clear st.buffer;
        { st with sub; finished = round >= st.total_engine_rounds }
      end
      else st
    end

  let output st = if st.finished then Some (Sub.result st.sub) else None
  let phase st = if st.finished then "done" else "broadcast"

  (* A finished wrapper never steps its substrate again and emits
     nothing. *)
  let inert st = st.finished
end
