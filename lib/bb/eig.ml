(* Exponential-Information-Gathering Byzantine Broadcast (unauthenticated).

   Round 0: the designated sender broadcasts its value.  Rounds 1..t+1 run
   the classic EIG exchange: every node relays what it has heard along
   every repetition-free path, building a tree whose node sigma@[q] stores
   "q said that sigma said ... the sender's value is v".  After t+2 local
   rounds each node resolves the tree bottom-up by strict majority
   (defaulting to bottom) and outputs resolve([]).

   Achieves the tight unauthenticated bound n > 3t in t+1 exchange rounds,
   at the cost of exponentially many message entries — acceptable at the
   simulation sizes of this repository, and guarded by [max_tree_size]. *)

open Vv_sim

let name = "eig"

let max_tree_size = 500_000

type msg =
  | Init of int  (* the sender's round-0 value *)
  | Report of { path : Types.node_id list; value : int }

let equal_msg a b =
  match (a, b) with
  | Init u, Init v -> Int.equal u v
  | Report a, Report b ->
      List.equal Int.equal a.path b.path && Int.equal a.value b.value
  | (Init _ | Report _), _ -> false

(* Init before Report; Report by path (lexicographic, shorter-is-less like
   the structural order), then value — the deterministic relay order. *)
let compare_msg a b =
  match (a, b) with
  | Init u, Init v -> Int.compare u v
  | Init _, Report _ -> -1
  | Report _, Init _ -> 1
  | Report a, Report b -> (
      match List.compare Int.compare a.path b.path with
      | 0 -> Int.compare a.value b.value
      | c -> c)

(* Tree keys are repetition-free paths packed into an int: element i of the
   path (stored as id+1 so that 0 never appears in an occupied slot) sits at
   bit offset i*kbits, where kbits is the bit width of n.  Packed keys make
   the tree an int-keyed Hashtbl — generic hashing of list keys walked the
   whole path per lookup and dominated EIG's profile. *)
let key_bits n =
  let rec go b = if n lsr b = 0 then b else go (b + 1) in
  go 1

(* Packed path plus the occupancy bitmask of its elements. *)
let pack ~kbits path =
  let rec go packed mask shift = function
    | [] -> (packed, mask)
    | q :: rest ->
        go
          (packed lor ((q + 1) lsl shift))
          (mask lor (1 lsl q))
          (shift + kbits) rest
  in
  go 0 0 0 path

(* The tree maps packed paths (in relay order, most recent relay last) to
   values.  When every packed key fits 16 bits — all the simulation sizes
   this repository sweeps — the tree is a direct-indexed array with a
   presence byte per slot (values are adversary-controlled ints, so no
   in-band absent marker exists); larger configurations fall back to the
   int-keyed Hashtbl. *)
type tree =
  | Dense of int array * Bytes.t
  | Sparse of (int, int) Hashtbl.t

let tree_create ~bits =
  if bits <= 16 then
    Dense (Array.make (1 lsl bits) 0, Bytes.make (1 lsl bits) '\000')
  else Sparse (Hashtbl.create 64)

let tree_mem tree key =
  match tree with
  | Dense (_, present) -> Bytes.unsafe_get present key <> '\000'
  | Sparse h -> Hashtbl.mem h key

let tree_add tree key v =
  match tree with
  | Dense (vals, present) ->
      Array.unsafe_set vals key v;
      Bytes.unsafe_set present key '\001'
  | Sparse h -> Hashtbl.add h key v

(* The value at [key], or [bottom] when the slot was never filled. *)
let tree_find tree key =
  match tree with
  | Dense (vals, present) ->
      if Bytes.unsafe_get present key <> '\000' then Array.unsafe_get vals key
      else Bb_intf.bottom
  | Sparse h -> (
      match Hashtbl.find_opt h key with
      | Some v -> v
      | None -> Bb_intf.bottom)

type state = {
  sender : Types.node_id;
  tree : tree;
  own : int;  (* this node's level-0 value w_i *)
  resolved : int option;
}

(* Number of repetition-free paths of length <= t+1 over n ids. *)
let tree_size ~n ~t =
  let rec go len acc product =
    if len > t + 1 then acc
    else
      let product = product * (n - len + 1) in
      go (len + 1) (acc + product) product
  in
  go 1 1 1

let rounds ~n:_ ~t = t + 2

let start ~n ~t ~me ~sender ~value ~outbox =
  if tree_size ~n ~t > max_tree_size then
    invalid_arg "Eig.start: EIG tree too large for these n, t";
  (* Packed keys need every path (length <= t+1) to fit one int.  The
     [max_tree_size] guard already forces tiny n, t; this is a backstop. *)
  if key_bits n * (t + 1) > 62 then
    invalid_arg "Eig.start: packed tree keys would overflow for these n, t";
  let st =
    {
      sender;
      tree = tree_create ~bits:(key_bits n * (t + 1));
      own = Bb_intf.bottom;
      resolved = None;
    }
  in
  match value with
  | Some v when me = sender ->
      if v < 0 then invalid_arg "Eig.start: negative value";
      Outbox.broadcast outbox (Init v);
      { st with own = v }
  | None when me <> sender -> st
  | Some _ -> invalid_arg "Eig.start: value supplied at non-sender"
  | None -> invalid_arg "Eig.start: sender has no value"

(* Bottom-up majority resolution over packed keys: [packed]/[len]/[mask]
   describe the current path; children are the ids absent from [mask].
   Strict majority is unique when it exists, so the O(children²) count is
   order-independent — and, at these sizes, cheaper than a counts table. *)
let rec resolve ~n ~t ~kbits tree packed len mask =
  if len = t + 1 then tree_find tree packed
  else begin
    let total = n - len in
    let votes = Array.make total Bb_intf.bottom in
    let k = ref 0 in
    for q = 0 to n - 1 do
      if mask land (1 lsl q) = 0 then begin
        votes.(!k) <-
          resolve ~n ~t ~kbits tree
            (packed lor ((q + 1) lsl (kbits * len)))
            (len + 1)
            (mask lor (1 lsl q));
        incr k
      end
    done;
    let winner = ref Bb_intf.bottom in
    (try
       for i = 0 to total - 1 do
         let v = votes.(i) in
         let c = ref 0 in
         for j = 0 to total - 1 do
           if Int.equal votes.(j) v then incr c
         done;
         if 2 * !c > total then begin
           winner := v;
           raise Exit
         end
       done
     with Exit -> ());
    !winner
  end

let step ~n ~t ~me st ~lround ~inbox ~outbox =
  if lround = 1 then begin
    (* Adopt the sender's value and open the exchange with a root report. *)
    let own = ref st.own in
    for i = 0 to inbox.Bb_intf.len - 1 do
      match inbox.Bb_intf.msgs.(i) with
      | Init v when inbox.Bb_intf.srcs.(i) = st.sender && v >= 0 -> own := v
      | Init _ | Report _ -> ()
    done;
    let own = !own in
    Outbox.broadcast outbox (Report { path = []; value = own });
    { st with own }
  end
  else if lround <= t + 2 then begin
    (* Accept level lround-1 entries: Report(path, v) from q with
       |path| = lround-2 and q not already on the path.  Entries of this
       level cannot pre-exist (earlier rounds accepted shorter paths
       only), so the fresh list collects exactly the level completed this
       round — the relay set — without re-folding the whole tree. *)
    let want_len = lround - 2 in
    let kbits = key_bits n in
    let fresh = ref [] in
    for i = 0 to inbox.Bb_intf.len - 1 do
      match inbox.Bb_intf.msgs.(i) with
      | Report { path; value } when List.compare_length_with path want_len = 0
        ->
          let src = inbox.Bb_intf.srcs.(i) in
          let packed, mask = pack ~kbits path in
          if mask land (1 lsl src) = 0 then begin
            let key = packed lor ((src + 1) lsl (kbits * want_len)) in
            if not (tree_mem st.tree key) then begin
              tree_add st.tree key value;
              if mask land (1 lsl me) = 0 && src <> me then
                fresh := Report { path = path @ [ src ]; value } :: !fresh
            end
          end
      | Report _ | Init _ -> ()
    done;
    if lround <= t + 1 then
      (* Relay the freshly-completed level in the deterministic message
         order (the arrival order is delivery-dependent, so sort). *)
      List.iter (Outbox.broadcast outbox) (List.sort compare_msg !fresh);
    let resolved =
      if lround = t + 2 then Some (resolve ~n ~t ~kbits st.tree 0 0 0)
      else st.resolved
    in
    { st with resolved }
  end
  else st

let result st =
  match st.resolved with Some v -> v | None -> st.own
