(** Dolev-Strong authenticated Byzantine Broadcast.

    [t+1] rounds; agreement and (honest-sender) validity for any [t < n]
    given unforgeable signatures ({!Auth}). The default Phase-1 substrate
    of Algorithms 1-3. Implements {!Bb_intf.S}. *)

val name : string

type msg = int Auth.chain
(** Signature chains over the broadcast value; exposed so Byzantine-sender
    adversaries can craft equivocating initial chains via
    {!Auth.initial}. *)

val equal_msg : msg -> msg -> bool

type state

val rounds : n:int -> t:int -> int
(** [t + 1]. *)

val start :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  sender:Vv_sim.Types.node_id ->
  value:int option ->
  outbox:msg Vv_sim.Outbox.t ->
  state

val step :
  n:int ->
  t:int ->
  me:Vv_sim.Types.node_id ->
  state ->
  lround:int ->
  inbox:msg Bb_intf.inbox ->
  outbox:msg Vv_sim.Outbox.t ->
  state

val result : state -> int
(** The unique accepted value, or {!Bb_intf.bottom} on none/equivocation. *)
