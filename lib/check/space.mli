(** The exhaustive checker's state space: small-model configurations
    (cells) and their scripted executions, with the symmetry reductions
    that keep the space finite (profiles up to option relabelling, fault
    placements up to node symmetry — see DESIGN.md §6), and the mapping
    onto {!Vv_core.Runner} specs. *)

type fault_plan =
  | Byzantine of int  (** [f] Byzantine nodes at the highest ids *)
  | Crash_one of { at_round : int; deliver_prefix : int; input : int }
      (** node [n - 1] crashes at [at_round], its final broadcast reaching
          ids [0 .. deliver_prefix - 1] only; [input] indexes the
          profile's options and is the crasher's own preference *)

type cell = {
  protocol : Vv_core.Runner.protocol;
  bb : Vv_bb.Bb.choice;  (** ignored by the Plain protocols *)
  n : int;
  t : int;
  profile : int list;
      (** surviving honest preference counts, descending; part [i] votes
          option [i] *)
  fault : fault_plan;
}

type execution = { cell : cell; script : Script.t }

type dims = {
  protocols : (Vv_core.Runner.protocol * Vv_bb.Bb.choice list) list;
  sizes : (int * int) list;  (** (n, t) pairs *)
  max_options : int;
  script_rounds : int;
  crash_rounds : int;
      (** crash [at_round] ranges over [0 .. crash_rounds - 1] *)
}

val smoke : dims
(** CI tier: every variant, one substrate, t = 1, two scripted rounds. *)

val full : dims
(** Every substrate behind every substrate protocol, plus t = 2 cells. *)

val uses_substrate : Vv_core.Runner.protocol -> bool
val comm_of : Vv_core.Runner.protocol -> Vv_sim.Types.comm_model

val profiles : honest:int -> max_options:int -> int list list
(** Descending partitions of [honest] into at most [max_options] positive
    parts — honest preference multisets up to option relabelling. *)

val cells : dims -> cell list
(** All configurations, in the fixed enumeration order (protocol,
    substrate, size, profile, fault plan). *)

val scripts_of : dims -> cell -> Script.t list
(** The cell's adversary universe: all scripts over the profile's live
    options (no [Vote_split] under local broadcast); the single empty
    script for crash cells. *)

val executions : dims -> execution array
(** Every (cell, script) pair; the array index is a stable, deterministic
    name for a run. *)

val max_rounds : int
(** Engine round budget — generous against every substrate's round count
    at the enumerated sizes, so a stall is a protocol stall. *)

val honest_inputs : cell -> Vv_ballot.Option_id.t list
(** The honest multiset the bounds are evaluated against: survivors only. *)

val spec_of : execution -> Vv_core.Runner.spec

val substrate_label : cell -> string
val pp_fault : fault_plan Fmt.t
val pp_profile : int list Fmt.t
val pp_cell : cell Fmt.t
val pp_execution : execution Fmt.t
