(** Rendering of checker results through the standard output layer, so
    [vvc check] speaks the same table/csv/json formats as the experiment
    subcommands. *)

val tables : Check.result -> Vv_prelude.Table.t list
(** Summary, tightness ledger, and (when any) the shrunk violations. *)

val verdict_line : Check.result -> string

val print : Vv_exec.Emit.format -> Check.result -> unit

val campaign :
  ?max_shrink_trials:int -> ?max_reported:int -> unit -> Vv_exec.Campaign.t
(** The checker as a campaign: one cell per enumerated execution, the
    aggregation and shrinking tail in the collector, [ok] and the
    verdict line carried in the emitted value. *)
