(** Rendering of checker results through the standard output layer, so
    [vvc check] speaks the same table/csv/json formats as the experiment
    subcommands. *)

val tables : Check.result -> Vv_prelude.Table.t list
(** Summary, tightness ledger, and (when any) the shrunk violations. *)

val verdict_line : Check.result -> string

val property_tables :
  Vv_ballot.Property.t * Check.result -> Vv_prelude.Table.t list
(** One property's slice of a multi-validity sweep: the
    [validity]-labeled summary, the tightness ledger only for the voting
    property, and any violations. *)

val sweep_verdict_line : Vv_ballot.Property.t * Check.result -> string
(** ["validity=<id> OK/FAIL ..."]. *)

val print : Vv_exec.Emit.format -> Check.result -> unit

val campaign :
  ?max_shrink_trials:int ->
  ?max_reported:int ->
  ?properties:Vv_ballot.Property.t list ->
  unit ->
  Vv_exec.Campaign.t
(** The checker as a campaign: one cell per enumerated execution, the
    aggregation and shrinking tail in the collector, [ok] and the
    verdict line carried in the emitted value. [properties] (default
    [[Property.voting]]) selects the validity sweep; the engine runs
    once per execution regardless of how many properties are swept.
    With the default, output is byte-identical to the historical
    fixed-validity checker; with several properties the collector emits
    one labeled summary (and verdict line) per property and [ok] demands
    every per-property result be ok. *)
