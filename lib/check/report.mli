(** Rendering of checker results through the standard output layer, so
    [vvc check] speaks the same table/csv/json formats as the experiment
    subcommands. *)

val tables : Check.result -> Vv_prelude.Table.t list
(** Summary, tightness ledger, and (when any) the shrunk violations. *)

val verdict_line : Check.result -> string

val print : Vv_exec.Emit.format -> Check.result -> unit
