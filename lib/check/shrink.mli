(** Greedy counterexample minimisation: repeatedly apply simplification
    moves (script action → [Skip], truncate, merge options, drop a voter,
    simplify the crash plan), keeping a move only when the re-run
    classifies identically — which preserves both the failure and its
    bound regime. Bounded by a re-run budget; 1-minimal w.r.t. the move
    set when the budget is not hit. *)

type result = {
  execution : Space.execution;  (** the minimised counterexample *)
  trials : int;  (** engine re-runs spent *)
  minimal : bool;  (** false iff the [max_trials] budget was exhausted *)
}

val moves : Space.execution -> Space.execution list
(** The candidate simplifications of one execution, in the order tried.
    Exposed for the test suite. *)

val minimise :
  ?max_trials:int ->
  classify:(Space.execution -> Oracle.class_) ->
  Oracle.class_ ->
  Space.execution ->
  result
(** [minimise ~classify target e] shrinks [e] while [classify] keeps
    returning [target] (compared with {!Oracle.equal_class}).
    [max_trials] (default 500) caps the total re-runs. *)

val shrink :
  ?max_trials:int ->
  ?property:Vv_ballot.Property.t ->
  Space.execution ->
  Oracle.class_ ->
  result
(** [minimise] with the real engine ({!Oracle.classify_run}), classifying
    against [property] (default {!Vv_ballot.Property.voting}). *)
