(** The exhaustive small-model checker's entry point.

    Enumerates the profile's state space, fans the engine runs out over
    the {!Vv_exec.Executor} domain pool, classifies every execution
    against {!Oracle}, and shrinks what gets reported. Output is
    byte-identical at every [?jobs] value: the fan-out is index-addressed
    and everything after it is sequential. *)

type profile = Vv_exec.Campaign.profile = Smoke | Full
(** Re-export of {!Vv_exec.Campaign.profile}, so the checker shares the
    CLI's tier vocabulary. *)

val dims_of : profile -> Space.dims
val profile_label : profile -> string
val profile_of_name : string -> profile option

type counterexample = {
  original : Space.execution;
  shrunk : Shrink.result;
  class_ : Oracle.class_;
  outcome : Vv_core.Runner.outcome option;
      (** re-run of the shrunk execution, for trace reporting *)
}

type group_stats = {
  protocol : Vv_core.Runner.protocol;
  substrate : string;
  cells : int;
  runs : int;
  exact : int;
  stall_admissible : int;
  defeated : int;
  violations : int;
}

type tightness = {
  kind : Vv_core.Bounds.kind;
  below_bound_cells : int;
  witnessed_cells : int;  (** below-bound cells with >= 1 witnessing run *)
  below_bound_runs : int;
  witness : counterexample option;  (** first witness in enumeration order, shrunk *)
}

type result = {
  profile : profile;
  total_cells : int;
  total_runs : int;
  groups : group_stats list;  (** per (protocol, substrate), enumeration order *)
  violations : counterexample list;  (** shrunk; capped at [max_reported] *)
  violations_total : int;
  tightness : tightness list;  (** one row per bound kind (Bft, Cft, Sct) *)
  ok : bool;
      (** no violations anywhere, and every bound kind has a below-bound
          tightness witness *)
}

val aggregate :
  ?max_shrink_trials:int ->
  ?max_reported:int ->
  ?property:Vv_ballot.Property.t ->
  profile ->
  execs:Space.execution array ->
  classes:Oracle.class_ array ->
  result
(** The sequential tail of a check run: fold the index-addressed
    classification array (as produced by {!Oracle.classify_run} per
    execution of {!Space.executions}) into the aggregated result.
    [property] (default {!Vv_ballot.Property.voting}) is the property
    the classes were computed against; shrinking re-classifies under it,
    and for non-voting properties [ok] demands only freedom from
    violations (tightness is a statement about the voting bounds).
    Shared by {!run} and the campaign wrapper in {!Report}. *)

val run :
  ?jobs:int -> ?max_shrink_trials:int -> ?max_reported:int -> profile -> result
(** [jobs] follows {!Vv_exec.Executor} semantics (default [1]; [0] = all
    cores but one); [max_reported] (default 10) caps how many violations
    are shrunk and carried in the result — [violations_total] still
    counts all. *)

val run_sweep :
  ?jobs:int ->
  ?max_shrink_trials:int ->
  ?max_reported:int ->
  properties:Vv_ballot.Property.t list ->
  profile ->
  (Vv_ballot.Property.t * result) list
(** Sweep several validity properties in one pass: each execution's
    engine run happens once and is classified against every property
    ({!Oracle.classify_run_sweep}), then one {!aggregate} per property.
    Results are in [properties] order; byte-identical at every [?jobs].
    [run_sweep ~properties:[Property.voting]] agrees with {!run}. *)
