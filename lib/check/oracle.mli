(** Outcome classification against the paper's guarantees.

    Above its bound a variant must be exact for every adversary (any
    failure is a violation); below it, safety-guaranteed variants may
    stall but never decide wrongly, and the other kinds' defeats are
    constructive tightness witnesses. *)

type class_ =
  | Exact  (** terminated, agreed, tie-break-aware voting validity *)
  | Admissible_stall
      (** below-bound safety-guaranteed stall — the predicted
          non-exactness, safety intact (Definition V.1) *)
  | Defeated
      (** below-bound Bft/Cft exactness failure — a tightness witness *)
  | Violation of string  (** the violated property *)

val class_label : class_ -> string
val pp_class : class_ Fmt.t
val equal_class : class_ -> class_ -> bool

val kind_of : Vv_core.Runner.protocol -> Vv_core.Bounds.kind
(** Which tolerance bound governs the protocol: Algorithms 1/3 are Bft,
    the safety-guaranteed pair is Sct, and CFT and Algorithm 4 (local
    broadcast, Inequality 15) have the Cft shape. *)

val substrate_ok : Space.cell -> bool
(** Whether the Phase-1 substrate's own tolerance holds — a hypothesis of
    the correctness theorems separate from the voting bound. *)

val bound_holds : Space.cell -> bool
(** The variant's voting bound against the cell's surviving honest
    multiset. *)

val expected_exact : Space.cell -> bool
(** [bound_holds && substrate_ok]: the regime where the paper promises
    exactness for every adversary. *)

val classify :
  Space.execution ->
  (Vv_core.Runner.outcome, [ `Invalid_adversary of string ]) result ->
  class_
(** Classify one outcome. An [`Invalid_adversary] rejection is always a
    violation: the checker only enumerates scripts legal under the cell's
    communication model, so a rejection is a checker or interpreter bug
    and must not silently shrink the universe. *)

val classify_run : Space.execution -> class_
(** Run the engine on [Space.spec_of] and classify — the checker's unit
    of work; domain-safe. *)

val witnesses_tightness : Space.execution -> class_ -> bool
(** Whether this run witnesses its cell's lower bound: strictly below the
    voting bound and actually defeated ([Defeated], or the predicted
    [Admissible_stall] for the safety-guaranteed kind). *)
