(** Outcome classification against a supplied validity property.

    Above its bound a variant must be exact for every adversary — and,
    because exactness decides the strict honest plurality, the promise
    extends to every property voting validity implies
    ({!Vv_ballot.Property.implies}); any failure there is a violation
    tagged with the property's id.  Below the bound, safety-guaranteed
    variants may stall but never decide against Definition V.1, and the
    other kinds' defeats are constructive tightness witnesses.  The
    default property is {!Vv_ballot.Property.voting}, under which the
    classification is identical to the historical hard-coded oracle. *)

type violation = {
  property : string;  (** {!Vv_ballot.Property.id} of the violated property *)
  detail : string;  (** which clause failed (termination/agreement/...) *)
}

type class_ =
  | Exact  (** terminated, agreed, admissible under the swept property *)
  | Admissible_stall
      (** below-bound safety-guaranteed stall — the predicted
          non-exactness, safety intact (Definition V.1) *)
  | Defeated
      (** exactness failure where nothing was promised — below-bound
          Bft/Cft, or a property outside voting validity's cone *)
  | Violation of violation  (** a promised guarantee broken *)

val violation_label : violation -> string
(** ["VIOLATION:<property>:<detail>"]. *)

val class_label : class_ -> string
val pp_class : class_ Fmt.t
val equal_class : class_ -> class_ -> bool

val kind_of : Vv_core.Runner.protocol -> Vv_core.Bounds.kind
(** Which tolerance bound governs the protocol: Algorithms 1/3 are Bft,
    the safety-guaranteed pair is Sct, and CFT and Algorithm 4 (local
    broadcast, Inequality 15) have the Cft shape. *)

val substrate_ok : Space.cell -> bool
(** Whether the Phase-1 substrate's own tolerance holds — a hypothesis of
    the correctness theorems separate from the voting bound. *)

val bound_holds : Space.cell -> bool
(** The variant's voting bound against the cell's surviving honest
    multiset. *)

val expected_exact : Space.cell -> bool
(** [bound_holds && substrate_ok]: the regime where the paper promises
    exactness for every adversary. *)

val classify :
  ?property:Vv_ballot.Property.t ->
  Space.execution ->
  (Vv_core.Runner.outcome, [ `Invalid_adversary of string ]) result ->
  class_
(** Classify one outcome against [property] (default
    {!Vv_ballot.Property.voting}). An [`Invalid_adversary] rejection is
    always a violation: the checker only enumerates scripts legal under
    the cell's communication model, so a rejection is a checker or
    interpreter bug and must not silently shrink the universe. *)

val classify_run : ?property:Vv_ballot.Property.t -> Space.execution -> class_
(** Run the engine on [Space.spec_of] and classify — the checker's unit
    of work; domain-safe. *)

val classify_run_sweep :
  properties:Vv_ballot.Property.t list -> Space.execution -> class_ list
(** Run the engine once and classify the single outcome against every
    property, in order — the multi-validity sweep's unit of work. *)

val witnesses_tightness : Space.execution -> class_ -> bool
(** Whether this run witnesses its cell's lower bound: strictly below the
    voting bound and actually defeated ([Defeated], or the predicted
    [Admissible_stall] for the safety-guaranteed kind). *)
