(* Orchestration: enumerate the space, fan the engine runs out over the
   domain pool, classify, collect violations and tightness witnesses, and
   shrink what gets reported.

   Determinism contract: the execution array's order is fixed by the
   enumeration (Space/Script), [Executor.map] returns an index-addressed
   array that is identical at every [--jobs], and everything after the
   parallel fan-out — aggregation, witness selection (first index wins),
   shrinking (greedy over a deterministic move list against a
   deterministic engine) — is sequential.  The checker's output is
   therefore byte-identical at any parallelism, which the test suite and
   CI pin. *)

module Runner = Vv_core.Runner
module Bounds = Vv_core.Bounds
module Executor = Vv_exec.Executor

type profile = Vv_exec.Campaign.profile = Smoke | Full

let dims_of = function Smoke -> Space.smoke | Full -> Space.full

let profile_label = Vv_exec.Campaign.profile_label

let profile_of_name = Vv_exec.Campaign.profile_of_string

type counterexample = {
  original : Space.execution;
  shrunk : Shrink.result;
  class_ : Oracle.class_;
  outcome : Runner.outcome option;
      (** re-run of the shrunk execution, for trace reporting; [None] only
          if the engine rejected the adversary (itself a violation) *)
}

type group_stats = {
  protocol : Runner.protocol;
  substrate : string;
  cells : int;
  runs : int;
  exact : int;
  stall_admissible : int;
  defeated : int;
  violations : int;
}

type tightness = {
  kind : Bounds.kind;
  below_bound_cells : int;
  witnessed_cells : int;  (** below-bound cells with >= 1 witnessing run *)
  below_bound_runs : int;
  witness : counterexample option;  (** first witness, shrunk *)
}

type result = {
  profile : profile;
  total_cells : int;
  total_runs : int;
  groups : group_stats list;
  violations : counterexample list;  (** shrunk; capped at [max_reported] *)
  violations_total : int;
  tightness : tightness list;  (** one row per bound kind *)
  ok : bool;
      (** no violations anywhere, and every bound kind has a below-bound
          tightness witness *)
}

let counterexample_of ?max_trials ?property exec class_ =
  let shrunk = Shrink.shrink ?max_trials ?property exec class_ in
  let outcome =
    Result.to_option (Runner.run_checked (Space.spec_of shrunk.Shrink.execution))
  in
  { original = exec; shrunk; class_; outcome }

let kinds = [ Bounds.Bft; Bounds.Cft; Bounds.Sct ]

(* The sequential tail of a check run: everything after the parallel
   classification fan-out.  Exposed so the campaign wrapper in {!Report}
   can fan the classification out through [Campaign.run] and still share
   this aggregation verbatim. *)
let aggregate ?max_shrink_trials ?(max_reported = 10)
    ?(property = Vv_ballot.Property.voting) profile ~execs ~classes =
  let dims = dims_of profile in
  let count = Array.length execs in
  (* Per (protocol, substrate) aggregation, in first-seen (= enumeration)
     order. *)
  let groups : (string, group_stats ref) Hashtbl.t = Hashtbl.create 16 in
  let group_order = ref [] in
  let group_of (cell : Space.cell) =
    let substrate = Space.substrate_label cell in
    let key = Runner.protocol_label cell.Space.protocol ^ "/" ^ substrate in
    match Hashtbl.find_opt groups key with
    | Some g -> g
    | None ->
        let g =
          ref
            {
              protocol = cell.Space.protocol;
              substrate;
              cells = 0;
              runs = 0;
              exact = 0;
              stall_admissible = 0;
              defeated = 0;
              violations = 0;
            }
        in
        Hashtbl.add groups key g;
        group_order := key :: !group_order;
        g
  in
  List.iter
    (fun cell ->
      let g = group_of cell in
      g := { !g with cells = !g.cells + 1 })
    (Space.cells dims);
  let violation_idx = ref [] in
  let witness_idx : (Bounds.kind * int) list ref = ref [] in
  let witnessed_cells : (Bounds.kind, Space.cell list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let below_runs : (Bounds.kind, int ref) Hashtbl.t = Hashtbl.create 8 in
  let tally tbl kind zero =
    match Hashtbl.find_opt tbl kind with
    | Some r -> r
    | None ->
        let r = ref zero in
        Hashtbl.add tbl kind r;
        r
  in
  Array.iteri
    (fun i class_ ->
      let exec = execs.(i) in
      let cell = exec.Space.cell in
      let g = group_of cell in
      let bump field =
        g :=
          (match field with
          | `Exact -> { !g with exact = !g.exact + 1 }
          | `Stall -> { !g with stall_admissible = !g.stall_admissible + 1 }
          | `Defeated -> { !g with defeated = !g.defeated + 1 }
          | `Violation -> { !g with violations = !g.violations + 1 })
      in
      g := { !g with runs = !g.runs + 1 };
      (match class_ with
      | Oracle.Exact -> bump `Exact
      | Oracle.Admissible_stall -> bump `Stall
      | Oracle.Defeated -> bump `Defeated
      | Oracle.Violation _ ->
          bump `Violation;
          violation_idx := i :: !violation_idx);
      let kind = Oracle.kind_of cell.Space.protocol in
      if not (Oracle.bound_holds cell) then
        incr (tally below_runs kind 0);
      if Oracle.witnesses_tightness exec class_ then begin
        if not (List.mem_assoc kind !witness_idx) then
          witness_idx := !witness_idx @ [ (kind, i) ];
        let cells = tally witnessed_cells kind [] in
        if not (List.mem cell !cells) then cells := cell :: !cells
      end)
    classes;
  let violation_idx = List.rev !violation_idx in
  let violations_total = List.length violation_idx in
  let violations =
    List.filteri (fun i _ -> i < max_reported) violation_idx
    |> List.map (fun i ->
           counterexample_of ?max_trials:max_shrink_trials ~property execs.(i)
             classes.(i))
  in
  let below_cells kind =
    List.length
      (List.filter
         (fun (c : Space.cell) ->
           Oracle.kind_of c.Space.protocol = kind && not (Oracle.bound_holds c))
         (Space.cells dims))
  in
  let tightness =
    List.map
      (fun kind ->
        let witness =
          Option.map
            (fun i ->
              counterexample_of ?max_trials:max_shrink_trials ~property
                execs.(i) classes.(i))
            (List.assoc_opt kind !witness_idx)
        in
        {
          kind;
          below_bound_cells = below_cells kind;
          witnessed_cells =
            (match Hashtbl.find_opt witnessed_cells kind with
            | Some l -> List.length !l
            | None -> 0);
          below_bound_runs =
            (match Hashtbl.find_opt below_runs kind with
            | Some r -> !r
            | None -> 0);
          witness;
        })
      kinds
  in
  let groups =
    List.rev_map (fun key -> !(Hashtbl.find groups key)) !group_order
  in
  (* Tightness is a statement about the *voting* bounds; when sweeping a
     different property only freedom from violations is demanded. *)
  let ok =
    violations_total = 0
    && ((not (Vv_ballot.Property.equal property Vv_ballot.Property.voting))
       || List.for_all (fun t -> Option.is_some t.witness) tightness)
  in
  {
    profile;
    total_cells = List.length (Space.cells dims);
    total_runs = count;
    groups;
    violations;
    violations_total;
    tightness;
    ok;
  }

let run ?jobs ?max_shrink_trials ?max_reported profile =
  let execs = Space.executions (dims_of profile) in
  let classes =
    Executor.map ?jobs ~count:(Array.length execs) (fun i ->
        Oracle.classify_run execs.(i))
  in
  aggregate ?max_shrink_trials ?max_reported profile ~execs ~classes

(* Multi-validity sweep: one engine run per execution, classified against
   every property; then one sequential aggregation per property.  The
   fan-out stays index-addressed, so output is byte-identical at every
   [?jobs] just like [run]. *)
let run_sweep ?jobs ?max_shrink_trials ?max_reported ~properties profile =
  let execs = Space.executions (dims_of profile) in
  let sweep =
    Executor.map ?jobs ~count:(Array.length execs) (fun i ->
        Oracle.classify_run_sweep ~properties execs.(i))
  in
  List.mapi
    (fun pi property ->
      let classes = Array.map (fun cs -> List.nth cs pi) sweep in
      ( property,
        aggregate ?max_shrink_trials ?max_reported ~property profile ~execs
          ~classes ))
    properties
