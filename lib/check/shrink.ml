(* Greedy counterexample minimisation.

   A failing execution is shrunk by repeatedly trying simplification moves
   and keeping the first one whose re-run classifies *identically* (same
   [Oracle.class_], including the violated property's name) — preserving
   the class also preserves the bound regime, because the classes above
   and below the bound are disjoint.  Moves, in the order tried:

     1. script: replace a non-[Skip] action with [Skip]; drop the last
        action;
     2. options: merge the last profile part into the first (remapping
        script indices and the crash input so the script's meaning is
        preserved up to the merge);
     3. size: remove one honest voter from a part (dropping the part when
        it empties);
     4. crash plan: lower the crash round; empty the delivered prefix.

   Greedy-to-fixpoint with a re-run budget: each candidate costs one
   engine run, and the [max_trials] cap bounds the whole minimisation so
   a pathological failure cannot stall the checker.  The result is
   1-minimal with respect to the move set when the budget is not hit. *)

module Strategy = Vv_core.Strategy

let remap_action ~from_ ~to_ (a : Strategy.script_action) =
  let r i = if i = from_ then to_ else i in
  match a with
  | Strategy.Skip -> Strategy.Skip
  | Strategy.Vote_all i -> Strategy.Vote_all (r i)
  | Strategy.Vote_split (i, j) -> Strategy.Vote_split (r i, r j)
  | Strategy.Propose_all i -> Strategy.Propose_all (r i)
  | Strategy.Vote_and_propose (i, j) -> Strategy.Vote_and_propose (r i, r j)

(* A split whose options collapse to the same index is no longer an
   equivocation; degrade it to the plain vote. *)
let normalise_action = function
  | Strategy.Vote_split (i, j) when i = j -> Strategy.Vote_all i
  | a -> a

let crash_one ~at_round ~deliver_prefix ~input =
  Space.Crash_one { at_round; deliver_prefix; input }

let with_cell (e : Space.execution) cell = { e with Space.cell = cell }

let script_moves (e : Space.execution) =
  let script = e.Space.script in
  let arr = Array.of_list script in
  let skip_one =
    List.filter_map
      (fun i ->
        if arr.(i) = Strategy.Skip then None
        else
          let arr' = Array.copy arr in
          arr'.(i) <- Strategy.Skip;
          Some { e with Space.script = Array.to_list arr' })
      (List.init (Array.length arr) Fun.id)
  in
  let truncate =
    match List.rev script with
    | [] -> []
    | _ :: rest -> [ { e with Space.script = List.rev rest } ]
  in
  skip_one @ truncate

(* Merge the last profile part (option [d - 1]) into the first (option 0),
   remapping the script and the crash input accordingly. *)
let merge_moves (e : Space.execution) =
  let cell = e.Space.cell in
  match cell.Space.profile with
  | [] | [ _ ] -> []
  | p0 :: rest ->
      let d = 1 + List.length rest in
      let merged = List.nth rest (d - 2) in
      let kept = List.filteri (fun i _ -> i < d - 2) rest in
      let profile = (p0 + merged) :: kept in
      let script =
        List.map
          (fun a -> normalise_action (remap_action ~from_:(d - 1) ~to_:0 a))
          e.Space.script
      in
      let fault =
        match cell.Space.fault with
        | Space.Byzantine _ as f -> f
        | Space.Crash_one { at_round; deliver_prefix; input } ->
            crash_one ~at_round ~deliver_prefix
              ~input:(if input = d - 1 then 0 else input)
      in
      [
        {
          Space.cell = { cell with Space.profile; Space.fault };
          Space.script;
        };
      ]

(* Remove one honest voter from part [i] (and the node carrying it). *)
let size_moves (e : Space.execution) =
  let cell = e.Space.cell in
  let parts = List.length cell.Space.profile in
  List.filter_map
    (fun i ->
      let profile =
        List.filter_map
          (fun (j, p) ->
            if j = i then if p = 1 then None else Some (p - 1) else Some p)
          (List.mapi (fun j p -> (j, p)) cell.Space.profile)
      in
      let profile = List.stable_sort (fun a b -> Int.compare b a) profile in
      let removed_whole = List.length profile < parts in
      if profile = [] then None
        (* Removing a non-final whole part would shift the option labels
           of the later parts under the script; the merge move covers
           option-count reduction, so skip those. *)
      else if removed_whole && i < parts - 1 then None
      else
        let n = cell.Space.n - 1 in
        let ok =
          match cell.Space.fault with
          | Space.Byzantine f -> n > f && n > cell.Space.t
          | Space.Crash_one _ -> n >= 2
        in
        if not ok then None
        else
          let fault =
            match cell.Space.fault with
            | Space.Byzantine _ as f -> f
            | Space.Crash_one { at_round; deliver_prefix; input } ->
                crash_one ~at_round
                  ~deliver_prefix:(min deliver_prefix n)
                  ~input:(min input (List.length profile - 1))
          in
          Some
            (with_cell e
               { cell with Space.n; Space.profile; Space.fault }))
    (List.init parts Fun.id)

let crash_moves (e : Space.execution) =
  let cell = e.Space.cell in
  match cell.Space.fault with
  | Space.Byzantine _ -> []
  | Space.Crash_one { at_round; deliver_prefix; input } ->
      let mk fault = with_cell e { cell with Space.fault } in
      (if at_round > 0 then
         [ mk (crash_one ~at_round:(at_round - 1) ~deliver_prefix ~input) ]
       else [])
      @
      if deliver_prefix > 0 then
        [ mk (crash_one ~at_round ~deliver_prefix:0 ~input) ]
      else []

let moves e = script_moves e @ merge_moves e @ size_moves e @ crash_moves e

type result = { execution : Space.execution; trials : int; minimal : bool }

let minimise ?(max_trials = 500) ~classify target e =
  let trials = ref 0 in
  let keeps e' =
    incr trials;
    Oracle.equal_class (classify e') target
  in
  let rec fixpoint e =
    if !trials >= max_trials then
      { execution = e; trials = !trials; minimal = false }
    else
      match List.find_opt keeps (moves e) with
      | Some e' -> fixpoint e'
      | None -> { execution = e; trials = !trials; minimal = true }
  in
  fixpoint e

let shrink ?max_trials ?property e target =
  minimise ?max_trials ~classify:(Oracle.classify_run ?property) target e
