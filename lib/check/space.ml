(* The checker's state space: which configurations and executions the
   exhaustive sweep covers, and how each one maps onto a Runner spec.

   Symmetry reductions (each argued in DESIGN.md §6):

   - Honest preference profiles are enumerated up to option relabelling:
     a profile is a descending partition of the honest count into at most
     [max_options] positive parts, part [i] voting option [i].  Any
     concrete assignment of options to counts is a relabelling of one of
     these, and every layer below the checker (tally, bounds, protocols)
     is label-equivariant.
   - Fault placements are enumerated up to node symmetry: under the
     complete graph all node positions are exchangeable except the
     speaker, so Byzantine nodes canonically occupy the highest ids (the
     speaker, node 0, stays honest) and the single crashing node is node
     [n - 1].
   - Byzantine cells use exactly [t] faulty nodes: the adversary can
     always emulate fewer faults by scripting [Skip]s, so f < t adds no
     behaviours.
   - Crash cells enumerate one mid-broadcast crash (the Lemma 4 shape):
     crash round, delivered prefix of recipients, and the crasher's own
     preference.  The crasher is excluded from the honest multiset the
     bounds are evaluated against, matching the paper's definition of G.

   Execution order is part of the determinism contract: cells enumerate
   protocols, then substrates, then sizes, then profiles, then fault
   plans; scripts enumerate lexicographically (Script.all).  The
   executions array index is therefore a stable name for a run. *)

module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Bb = Vv_bb.Bb
module Oid = Vv_ballot.Option_id

type fault_plan =
  | Byzantine of int  (** [f] Byzantine nodes at the highest ids *)
  | Crash_one of { at_round : int; deliver_prefix : int; input : int }
      (** node [n - 1] crashes at [at_round], its final broadcast reaching
          only ids [0 .. deliver_prefix - 1]; [input] indexes the profile's
          options and is the crasher's own preference *)

type cell = {
  protocol : Runner.protocol;
  bb : Bb.choice;  (** Phase-1 substrate; ignored by the Plain protocols *)
  n : int;
  t : int;
  profile : int list;
      (** surviving honest preference counts, descending; part [i] votes
          option [i] *)
  fault : fault_plan;
}

type execution = { cell : cell; script : Script.t }

type dims = {
  protocols : (Runner.protocol * Bb.choice list) list;
  sizes : (int * int) list;  (** (n, t) pairs *)
  max_options : int;
  script_rounds : int;
  crash_rounds : int;  (** crash [at_round] ranges over [0 .. crash_rounds - 1] *)
}

(* Whether the protocol routes Phase 1 through a broadcast substrate (and
   therefore which [bb] choices are distinct cells). *)
let uses_substrate = function
  | Runner.Algo1 | Runner.Algo2_sct | Runner.Algo3_incremental
  | Runner.Sct_incremental ->
      true
  | Runner.Algo4_local | Runner.Cft -> false

let comm_of = function
  | Runner.Algo4_local -> Vv_sim.Types.Local_broadcast
  | Runner.Algo1 | Runner.Algo2_sct | Runner.Algo3_incremental | Runner.Cft
  | Runner.Sct_incremental ->
      Vv_sim.Types.Point_to_point

(* Smoke: every variant, one substrate, t = 1, two scripted rounds.
   Sized for CI — must certify all six variants and find a tightness
   witness per bound kind in well under two minutes on one core. *)
let smoke =
  {
    protocols =
      [
        (Runner.Algo1, [ Bb.Dolev_strong ]);
        (Runner.Algo2_sct, [ Bb.Dolev_strong ]);
        (Runner.Algo3_incremental, [ Bb.Dolev_strong ]);
        (Runner.Sct_incremental, [ Bb.Dolev_strong ]);
        (Runner.Algo4_local, [ Bb.default ]);
        (Runner.Cft, [ Bb.default ]);
      ];
    sizes = [ (4, 1); (5, 1); (6, 1) ];
    max_options = 3;
    script_rounds = 2;
    crash_rounds = 5;
  }

(* Full: every substrate behind every substrate protocol, plus t = 2
   cells.  Same script horizon — the budget multiplier is substrates and
   sizes, not script length. *)
let full =
  {
    protocols =
      [
        (Runner.Algo1, Bb.all);
        (Runner.Algo2_sct, Bb.all);
        (Runner.Algo3_incremental, Bb.all);
        (Runner.Sct_incremental, Bb.all);
        (Runner.Algo4_local, [ Bb.default ]);
        (Runner.Cft, [ Bb.default ]);
      ];
    sizes = [ (4, 1); (5, 1); (6, 1); (6, 2) ];
    max_options = 3;
    script_rounds = 2;
    crash_rounds = 5;
  }

(* Descending partitions of [honest] into at most [max_options] positive
   parts, largest first part first. *)
let profiles ~honest ~max_options =
  let rec go total maxpart slots =
    if total = 0 then [ [] ]
    else if slots = 0 then []
    else
      List.concat_map
        (fun i ->
          let p = min total maxpart - i in
          if p < 1 then []
          else List.map (fun rest -> p :: rest) (go (total - p) p (slots - 1)))
        (List.init (min total maxpart) Fun.id)
  in
  go honest honest max_options

let cells dims =
  List.concat_map
    (fun (protocol, bbs) ->
      let bbs = if uses_substrate protocol then bbs else [ Bb.default ] in
      List.concat_map
        (fun bb ->
          List.concat_map
            (fun (n, t) ->
              match protocol with
              | Runner.Cft ->
                  (* One crashing node; the surviving honest set has
                     [n - 1] members. *)
                  List.concat_map
                    (fun profile ->
                      let d = List.length profile in
                      List.concat_map
                        (fun at_round ->
                          List.concat_map
                            (fun deliver_prefix ->
                              List.map
                                (fun input ->
                                  {
                                    protocol;
                                    bb;
                                    n;
                                    t;
                                    profile;
                                    fault =
                                      Crash_one
                                        { at_round; deliver_prefix; input };
                                  })
                                (List.init d Fun.id))
                            (List.init (n + 1) Fun.id))
                        (List.init dims.crash_rounds Fun.id))
                    (profiles ~honest:(n - 1) ~max_options:dims.max_options)
              | _ ->
                  List.map
                    (fun profile ->
                      { protocol; bb; n; t; profile; fault = Byzantine t })
                    (profiles ~honest:(n - t) ~max_options:dims.max_options))
            dims.sizes)
        bbs)
    dims.protocols

let scripts_of dims cell =
  match cell.fault with
  | Crash_one _ -> [ [] ]  (* no Byzantine node to act *)
  | Byzantine _ ->
      let allow_split = comm_of cell.protocol = Vv_sim.Types.Point_to_point in
      let alphabet =
        Script.alphabet ~options:(List.length cell.profile) ~allow_split
      in
      Script.all ~rounds:dims.script_rounds ~alphabet

let executions dims =
  Array.of_list
    (List.concat_map
       (fun cell -> List.map (fun script -> { cell; script }) (scripts_of dims cell))
       (cells dims))

(* --- mapping onto the runner --- *)

(* Round budget: generous against every substrate's round count at the
   sizes above, so a stall is a protocol stall, not a truncation. *)
let max_rounds = 60

let inputs_of_profile profile =
  List.concat
    (List.mapi
       (fun opt count -> List.init count (fun _ -> Oid.of_int opt))
       profile)

(* The honest multiset the bounds are evaluated against: survivors only
   (Byzantine slots carry filler, the crasher is faulty by definition). *)
let honest_inputs cell = inputs_of_profile cell.profile

let spec_of { cell; script } =
  let { protocol; bb; n; t; profile; fault } = cell in
  let strategy = Strategy.Scripted script in
  match fault with
  | Byzantine f ->
      let honest = inputs_of_profile profile in
      let byzantine = List.init f (fun i -> n - f + i) in
      let inputs = honest @ List.init f (fun _ -> Oid.of_int 0) in
      Runner.spec ~byzantine ~protocol ~bb ~strategy ~max_rounds ~n ~t inputs
  | Crash_one { at_round; deliver_prefix; input } ->
      let honest = inputs_of_profile profile in
      let inputs = honest @ [ Oid.of_int input ] in
      let crash = [ (n - 1, at_round, List.init deliver_prefix Fun.id) ] in
      Runner.spec ~crash ~protocol ~bb ~strategy ~max_rounds ~n ~t inputs

(* --- pretty-printing --- *)

let pp_fault ppf = function
  | Byzantine f -> Fmt.pf ppf "byz:%d" f
  | Crash_one { at_round; deliver_prefix; input } ->
      Fmt.pf ppf "crash@r%d/pfx%d/in%d" at_round deliver_prefix input

let pp_profile ppf profile =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ",") int) profile

let substrate_label cell =
  if uses_substrate cell.protocol then Bb.name cell.bb else "plain"

let pp_cell ppf c =
  Fmt.pf ppf "%s/%s n=%d t=%d %a %a"
    (Runner.protocol_label c.protocol)
    (substrate_label c) c.n c.t pp_profile c.profile pp_fault c.fault

let pp_execution ppf e =
  Fmt.pf ppf "%a %a" pp_cell e.cell Script.pp e.script
