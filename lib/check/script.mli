(** Enumeration of the checker's scripted-adversary universe.

    A script is a per-round {!Vv_core.Strategy.script_action} list replayed
    by [Strategy.Scripted] from the round honest votes are first observed.
    The classic hand-written strategies are all embedded in the alphabet,
    so exhausting it subsumes them. *)

type t = Vv_core.Strategy.script_action list

val pp : t Fmt.t

val alphabet :
  options:int -> allow_split:bool -> Vv_core.Strategy.script_action list
(** The per-round action alphabet for [options] live options, in a fixed
    order (enumeration order is part of the determinism contract):
    [Skip], [Vote_all], [Propose_all], [Vote_and_propose], and — only with
    [allow_split], i.e. under point-to-point — [Vote_split] over ordered
    distinct pairs. Raises [Invalid_argument] when [options < 1]. *)

val all :
  rounds:int -> alphabet:Vv_core.Strategy.script_action list -> t list
(** All scripts of exactly [rounds] actions, lexicographic in alphabet
    order. [alphabet]{^[rounds]} scripts; trailing-[Skip] duplicates are
    kept so the enumeration stays a plain cartesian power. *)

val count : rounds:int -> alphabet:Vv_core.Strategy.script_action list -> int
(** [List.length (all ~rounds ~alphabet)], without materialising it. *)
