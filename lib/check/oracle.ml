(* Classify one execution's outcome against a supplied validity property.

   Each cell sits in exactly one bound regime, decided statically from its
   surviving honest multiset:

   - [expected_exact]: the variant's bound (Bounds.kind via [kind_of]) is
     satisfied AND the Phase-1 substrate's own tolerance holds.  Here the
     paper promises exactness — termination, agreement, and
     tie-break-aware voting validity — for every adversary.  Because an
     in-bound run decides the strict honest plurality, exactness entails
     every property that voting validity implies in the hierarchy
     (Property.implies), so any failure against such a property is a
     [Violation].  For properties voting validity does *not* entail
     (e.g. median), nothing is promised and a miss is a [Defeated].
   - below bound, safety-guaranteed kind (Sct): the protocol may stall
     forever but must never decide against the established rule
     (Definition V.1) — a standing promise independent of the property
     under test.  A stall is [Admissible_stall] — and is exactly the
     non-exactness the lower bound predicts — while a Definition V.1
     breach is a [Violation] even below the bound.
   - below bound, Bft/Cft kinds: nothing is promised; an execution where
     exactness fails is a [Defeated] — a constructive tightness witness
     generalizing the hand-built Lemma 2 scenarios of
     lib/analysis/witness.ml — and one where the adversary failed to do
     damage is still [Exact].

   An [`Invalid_adversary] rejection is always a violation: the checker
   only enumerates scripts that are legal under the cell's communication
   model, so a rejection means the enumeration or the interpreter is
   wrong, and silently skipping it would shrink the universe the
   exhaustiveness claim quantifies over. *)

module Runner = Vv_core.Runner
module Bounds = Vv_core.Bounds
module Bb = Vv_bb.Bb
module Property = Vv_ballot.Property

type violation = { property : string; detail : string }

type class_ =
  | Exact
  | Admissible_stall
  | Defeated
  | Violation of violation

let violation_label v = "VIOLATION:" ^ v.property ^ ":" ^ v.detail

let class_label = function
  | Exact -> "exact"
  | Admissible_stall -> "stall-admissible"
  | Defeated -> "defeated"
  | Violation v -> violation_label v

let pp_class ppf c = Fmt.string ppf (class_label c)

let equal_class a b =
  match (a, b) with
  | Exact, Exact | Admissible_stall, Admissible_stall | Defeated, Defeated ->
      true
  | Violation p, Violation q ->
      String.equal p.property q.property && String.equal p.detail q.detail
  | (Exact | Admissible_stall | Defeated | Violation _), _ -> false

(* Which tolerance bound governs each protocol.  Algorithm 4 runs under
   the local broadcast model, where equivocation is impossible and
   Inequality (15) has the CFT shape (exp_bounds E6 checks this against
   the paper's table). *)
let kind_of = function
  | Runner.Algo1 | Runner.Algo3_incremental -> Bounds.Bft
  | Runner.Algo2_sct | Runner.Sct_incremental -> Bounds.Sct
  | Runner.Cft | Runner.Algo4_local -> Bounds.Cft

(* The substrate's own tolerance is a hypothesis of the correctness
   theorems, separate from the voting bound (a Phase-King run at n <= 4t
   can misbroadcast before the voting layer even sees a ballot). *)
let substrate_ok (cell : Space.cell) =
  (not (Space.uses_substrate cell.protocol))
  || cell.n >= Bb.min_n cell.bb ~t:cell.t

let bound_holds (cell : Space.cell) =
  Bounds.satisfied_for (kind_of cell.protocol) ~tie:Vv_ballot.Tie_break.default
    ~n:cell.n ~t:cell.t (Space.honest_inputs cell)

let expected_exact cell = bound_holds cell && substrate_ok cell

let classify ?(property = Property.voting) (exec : Space.execution) outcome =
  let cell = exec.Space.cell in
  match outcome with
  | Error (`Invalid_adversary reason) ->
      Violation
        { property = property.Property.id;
          detail = "invalid-adversary: " ^ reason }
  | Ok (o : Runner.outcome) ->
      let admissible =
        property.Property.admissible ~tie:Vv_ballot.Tie_break.default
          ~t_tol:cell.Space.t ~honest_inputs:o.Runner.honest_inputs
          ~outputs:o.Runner.outputs
      in
      let exact = o.Runner.termination && o.Runner.agreement && admissible in
      (* In bound, exactness decides the strict honest plurality, which
         carries every property voting validity entails; outside that
         cone the promise does not extend to [property]. *)
      if expected_exact cell && Property.implies Property.voting property then
        if not o.Runner.termination then
          Violation { property = property.Property.id; detail = "termination" }
        else if not o.Runner.agreement then
          Violation { property = property.Property.id; detail = "agreement" }
        else if not admissible then
          Violation { property = property.Property.id; detail = "validity" }
        else Exact
      else begin
        match kind_of cell.Space.protocol with
        | Bounds.Sct ->
            (* Definition V.1 is the Sct variants' own standing promise,
               phrased over voting validity regardless of the swept
               property. *)
            if not o.Runner.safety_admissible then
              Violation
                { property = Property.voting.Property.id;
                  detail = "safety-guaranteed admissibility" }
            else if exact then Exact
            else Admissible_stall
        | Bounds.Bft | Bounds.Cft -> if exact then Exact else Defeated
      end

(* Run the engine and classify; the checker's unit of work. *)
let classify_run ?property exec =
  classify ?property exec (Runner.run_checked (Space.spec_of exec))

(* Run the engine once, classify against every property in [properties];
   the multi-validity sweep's unit of work. *)
let classify_run_sweep ~properties exec =
  let outcome = Runner.run_checked (Space.spec_of exec) in
  List.map (fun property -> classify ~property exec outcome) properties

(* Whether the execution witnesses its cell's lower bound: a below-bound
   run where the adversary (or fault) actually defeated exactness.  For
   the safety-guaranteed kind the predicted non-exactness is the stall. *)
let witnesses_tightness exec class_ =
  (* Below the *voting* bound specifically — a substrate-only shortfall
     says nothing about the paper's lower bounds. *)
  (not (bound_holds exec.Space.cell))
  &&
  match (kind_of exec.Space.cell.Space.protocol, class_) with
  | Bounds.Sct, Admissible_stall -> true
  | (Bounds.Bft | Bounds.Cft), Defeated -> true
  | _, (Exact | Admissible_stall | Defeated | Violation _) -> false
