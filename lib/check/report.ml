(* Render a checker result through the repo's standard output layer
   (Table -> table/csv/json via Emit), so `vvc check` speaks the same
   formats as every experiment subcommand.

   Three tables: the per-(protocol, substrate) summary, the per-kind
   tightness ledger, and one row per reported counterexample — cell,
   script, class, the shrunk execution's honest outputs and its trace
   (rounds used, message counts, stall flag, decision rounds), which is
   the compact face of the Trace.snapshot the engine recorded. *)

module Table = Vv_prelude.Table
module Runner = Vv_core.Runner
module Bounds = Vv_core.Bounds
module Emit = Vv_exec.Emit

let summary_table ?validity (r : Check.result) =
  let t =
    Table.create
      ~title:
        (Fmt.str "vv_check %s: %d cells, %d runs%s"
           (Check.profile_label r.Check.profile)
           r.Check.total_cells r.Check.total_runs
           (match validity with
           | None -> ""
           | Some id -> " [validity=" ^ id ^ "]"))
      ~headers:
        [
          "protocol"; "substrate"; "cells"; "runs"; "exact"; "stall-ok";
          "defeated"; "violations";
        ]
      ~aligns:
        [
          Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right;
        ]
      ()
  in
  List.iter
    (fun (g : Check.group_stats) ->
      Table.add_row t
        [
          Runner.protocol_label g.Check.protocol;
          g.Check.substrate;
          Table.icell g.Check.cells;
          Table.icell g.Check.runs;
          Table.icell g.Check.exact;
          Table.icell g.Check.stall_admissible;
          Table.icell g.Check.defeated;
          Table.icell g.Check.violations;
        ])
    r.Check.groups;
  t

let witness_cell = function
  | None -> "MISSING"
  | Some (c : Check.counterexample) ->
      Fmt.str "%a" Space.pp_execution c.Check.shrunk.Shrink.execution

let tightness_table (r : Check.result) =
  let t =
    Table.create ~title:"tightness: below-bound configs must be defeatable"
      ~headers:
        [
          "kind"; "below-bound cells"; "witnessed cells"; "below-bound runs";
          "witness (shrunk)";
        ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
      ()
  in
  List.iter
    (fun (tr : Check.tightness) ->
      Table.add_row t
        [
          Fmt.str "%a" Bounds.pp_kind tr.Check.kind;
          Table.icell tr.Check.below_bound_cells;
          Table.icell tr.Check.witnessed_cells;
          Table.icell tr.Check.below_bound_runs;
          witness_cell tr.Check.witness;
        ])
    r.Check.tightness;
  t

let outputs_cell (o : Runner.outcome option) =
  match o with
  | None -> "engine rejected adversary"
  | Some o ->
      Fmt.str "%a"
        Fmt.(
          list ~sep:(any ",")
            (option ~none:(any "·") Vv_ballot.Option_id.pp))
        o.Runner.outputs

let trace_cell (o : Runner.outcome option) =
  match o with
  | None -> "-"
  | Some o ->
      Fmt.str "%d rounds, %d+%d msgs%s; decided %a" o.Runner.rounds
        o.Runner.honest_msgs o.Runner.byz_msgs
        (if o.Runner.stalled then ", STALLED" else "")
        Fmt.(list ~sep:(any ",") (option ~none:(any "·") int))
        o.Runner.decision_rounds

let violations_table (r : Check.result) =
  let t =
    Table.create
      ~title:
        (Fmt.str "violations: %d reported of %d found"
           (List.length r.Check.violations)
           r.Check.violations_total)
      ~headers:
        [ "#"; "counterexample (shrunk)"; "violated"; "outputs"; "trace"; "shrink" ]
      ~aligns:
        [
          Table.Right; Table.Left; Table.Left; Table.Left; Table.Left;
          Table.Left;
        ]
      ()
  in
  List.iteri
    (fun i (c : Check.counterexample) ->
      Table.add_row t
        [
          Table.icell i;
          Fmt.str "%a" Space.pp_execution c.Check.shrunk.Shrink.execution;
          Oracle.class_label c.Check.class_;
          outputs_cell c.Check.outcome;
          trace_cell c.Check.outcome;
          Fmt.str "%d trials%s" c.Check.shrunk.Shrink.trials
            (if c.Check.shrunk.Shrink.minimal then "" else " (budget hit)");
        ])
    r.Check.violations;
  t

let tables r =
  summary_table r :: tightness_table r
  ::
  (if r.Check.violations = [] then [] else [ violations_table r ])

let verdict_line (r : Check.result) =
  if r.Check.ok then
    Fmt.str "OK: %d runs exact where promised; every bound kind witnessed tight"
      r.Check.total_runs
  else if r.Check.violations_total > 0 then
    Fmt.str "FAIL: %d violation(s) of promised guarantees"
      r.Check.violations_total
  else "FAIL: some bound kind has no tightness witness"

module Property = Vv_ballot.Property

(* One property's slice of a multi-validity sweep: the labeled summary,
   the tightness ledger only where it means something (the voting
   bounds), and any violations. *)
let property_tables (p, (r : Check.result)) =
  (summary_table ~validity:p.Property.id r
  ::
  (if Property.equal p Property.voting then [ tightness_table r ] else []))
  @ (if r.Check.violations = [] then [] else [ violations_table r ])

let sweep_verdict_line (p, (r : Check.result)) =
  let base =
    if r.Check.ok then
      if Property.equal p Property.voting then verdict_line r
      else
        Fmt.str "OK: %d runs, no %s violations where promised"
          r.Check.total_runs p.Property.id
    else verdict_line r
  in
  Fmt.str "validity=%s %s" p.Property.id base

let print fmt r =
  Emit.tables fmt (tables r);
  match fmt with
  | Emit.Json -> ()
  | Emit.Table | Emit.Csv -> print_endline (verdict_line r)

(* One cell per enumerated execution; classification fans out (a single
   engine run per execution classified against every swept property),
   the aggregation + shrinking tail runs in [collect].  The verdict line
   rides along in [emitted] so the shared CLI emitter prints it exactly
   where [print] used to.  With the default single-voting sweep the
   rendered output is byte-identical to the historical fixed-validity
   checker. *)
let campaign ?max_shrink_trials ?max_reported
    ?(properties = [ Property.voting ]) () =
  let module Campaign = Vv_exec.Campaign in
  let properties = if properties = [] then [ Property.voting ] else properties in
  Campaign.v ~id:"check"
    ~what:
      "Exhaustive small-model check: classify every execution, shrink \
       violations, witness tightness"
    ~axes:
      [ ("protocol", [ "algo1"; "algo2-sct"; "cft" ]);
        ("dimension", [ "electorate"; "adversary"; "substrate"; "delay" ]);
        ("validity", List.map Property.id properties) ]
    ~cells:(fun profile ->
      Array.to_list (Space.executions (Check.dims_of profile)))
    ~run_cell:(fun _ exec -> Oracle.classify_run_sweep ~properties exec)
    ~collect:(fun profile pairs ->
      let execs = Array.of_list (List.map fst pairs) in
      let sweep = Array.of_list (List.map snd pairs) in
      let results =
        List.mapi
          (fun pi p ->
            let classes = Array.map (fun cs -> List.nth cs pi) sweep in
            ( p,
              Check.aggregate ?max_shrink_trials ?max_reported ~property:p
                profile ~execs ~classes ))
          properties
      in
      match results with
      | [ (p, r) ] when Property.equal p Property.voting ->
          { Campaign.tables = tables r; ok = r.Check.ok;
            verdict = Some (verdict_line r) }
      | _ ->
          {
            Campaign.tables = List.concat_map property_tables results;
            ok = List.for_all (fun (_, r) -> r.Check.ok) results;
            verdict =
              Some
                (String.concat "\n" (List.map sweep_verdict_line results));
          })
    ()
