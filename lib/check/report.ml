(* Render a checker result through the repo's standard output layer
   (Table -> table/csv/json via Emit), so `vvc check` speaks the same
   formats as every experiment subcommand.

   Three tables: the per-(protocol, substrate) summary, the per-kind
   tightness ledger, and one row per reported counterexample — cell,
   script, class, the shrunk execution's honest outputs and its trace
   (rounds used, message counts, stall flag, decision rounds), which is
   the compact face of the Trace.snapshot the engine recorded. *)

module Table = Vv_prelude.Table
module Runner = Vv_core.Runner
module Bounds = Vv_core.Bounds
module Emit = Vv_exec.Emit

let summary_table (r : Check.result) =
  let t =
    Table.create
      ~title:
        (Fmt.str "vv_check %s: %d cells, %d runs"
           (Check.profile_label r.Check.profile)
           r.Check.total_cells r.Check.total_runs)
      ~headers:
        [
          "protocol"; "substrate"; "cells"; "runs"; "exact"; "stall-ok";
          "defeated"; "violations";
        ]
      ~aligns:
        [
          Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right;
        ]
      ()
  in
  List.iter
    (fun (g : Check.group_stats) ->
      Table.add_row t
        [
          Runner.protocol_label g.Check.protocol;
          g.Check.substrate;
          Table.icell g.Check.cells;
          Table.icell g.Check.runs;
          Table.icell g.Check.exact;
          Table.icell g.Check.stall_admissible;
          Table.icell g.Check.defeated;
          Table.icell g.Check.violations;
        ])
    r.Check.groups;
  t

let witness_cell = function
  | None -> "MISSING"
  | Some (c : Check.counterexample) ->
      Fmt.str "%a" Space.pp_execution c.Check.shrunk.Shrink.execution

let tightness_table (r : Check.result) =
  let t =
    Table.create ~title:"tightness: below-bound configs must be defeatable"
      ~headers:
        [
          "kind"; "below-bound cells"; "witnessed cells"; "below-bound runs";
          "witness (shrunk)";
        ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
      ()
  in
  List.iter
    (fun (tr : Check.tightness) ->
      Table.add_row t
        [
          Fmt.str "%a" Bounds.pp_kind tr.Check.kind;
          Table.icell tr.Check.below_bound_cells;
          Table.icell tr.Check.witnessed_cells;
          Table.icell tr.Check.below_bound_runs;
          witness_cell tr.Check.witness;
        ])
    r.Check.tightness;
  t

let outputs_cell (o : Runner.outcome option) =
  match o with
  | None -> "engine rejected adversary"
  | Some o ->
      Fmt.str "%a"
        Fmt.(
          list ~sep:(any ",")
            (option ~none:(any "·") Vv_ballot.Option_id.pp))
        o.Runner.outputs

let trace_cell (o : Runner.outcome option) =
  match o with
  | None -> "-"
  | Some o ->
      Fmt.str "%d rounds, %d+%d msgs%s; decided %a" o.Runner.rounds
        o.Runner.honest_msgs o.Runner.byz_msgs
        (if o.Runner.stalled then ", STALLED" else "")
        Fmt.(list ~sep:(any ",") (option ~none:(any "·") int))
        o.Runner.decision_rounds

let violations_table (r : Check.result) =
  let t =
    Table.create
      ~title:
        (Fmt.str "violations: %d reported of %d found"
           (List.length r.Check.violations)
           r.Check.violations_total)
      ~headers:
        [ "#"; "counterexample (shrunk)"; "violated"; "outputs"; "trace"; "shrink" ]
      ~aligns:
        [
          Table.Right; Table.Left; Table.Left; Table.Left; Table.Left;
          Table.Left;
        ]
      ()
  in
  List.iteri
    (fun i (c : Check.counterexample) ->
      Table.add_row t
        [
          Table.icell i;
          Fmt.str "%a" Space.pp_execution c.Check.shrunk.Shrink.execution;
          Oracle.class_label c.Check.class_;
          outputs_cell c.Check.outcome;
          trace_cell c.Check.outcome;
          Fmt.str "%d trials%s" c.Check.shrunk.Shrink.trials
            (if c.Check.shrunk.Shrink.minimal then "" else " (budget hit)");
        ])
    r.Check.violations;
  t

let tables r =
  summary_table r :: tightness_table r
  ::
  (if r.Check.violations = [] then [] else [ violations_table r ])

let verdict_line (r : Check.result) =
  if r.Check.ok then
    Fmt.str "OK: %d runs exact where promised; every bound kind witnessed tight"
      r.Check.total_runs
  else if r.Check.violations_total > 0 then
    Fmt.str "FAIL: %d violation(s) of promised guarantees"
      r.Check.violations_total
  else "FAIL: some bound kind has no tightness witness"

let print fmt r =
  Emit.tables fmt (tables r);
  match fmt with
  | Emit.Json -> ()
  | Emit.Table | Emit.Csv -> print_endline (verdict_line r)

(* One cell per enumerated execution; classification fans out, the
   aggregation + shrinking tail runs in [collect].  The verdict line
   rides along in [emitted] so the shared CLI emitter prints it exactly
   where [print] used to. *)
let campaign ?max_shrink_trials ?max_reported () =
  let module Campaign = Vv_exec.Campaign in
  Campaign.v ~id:"check"
    ~what:
      "Exhaustive small-model check: classify every execution, shrink \
       violations, witness tightness"
    ~axes:
      [ ("protocol", [ "algo1"; "algo2-sct"; "cft" ]);
        ("dimension", [ "electorate"; "adversary"; "substrate"; "delay" ]) ]
    ~cells:(fun profile ->
      Array.to_list (Space.executions (Check.dims_of profile)))
    ~run_cell:(fun _ exec -> Oracle.classify_run exec)
    ~collect:(fun profile pairs ->
      let execs = Array.of_list (List.map fst pairs) in
      let classes = Array.of_list (List.map snd pairs) in
      let r =
        Check.aggregate ?max_shrink_trials ?max_reported profile ~execs
          ~classes
      in
      { Campaign.tables = tables r; ok = r.Check.ok;
        verdict = Some (verdict_line r) })
    ()
