(* The checker's adversary universe, as data.

   A script is a per-round list of {!Vv_core.Strategy.script_action}s,
   replayed from the round the adversary first observes honest votes (see
   [Strategy.Scripted]).  Enumerating scripts instead of hand-written
   strategies is what makes the checker exhaustive: every adversary the
   engine can express within the action alphabet and the round horizon is
   tried, so "no violation found" is a statement about the whole universe,
   not about a curated list.

   The action alphabet for [d] live options:
     - [Skip]                                     (1)
     - [Vote_all i]          for each option      (d)
     - [Propose_all i]       for each option      (d)
     - [Vote_and_propose]    for each pair        (d^2)
     - [Vote_split (i, j)]   for each ordered pair of distinct options
                             (d^2 - d), point-to-point only — the engine
                             rejects per-recipient equivocation under
                             local broadcast, so those cells enumerate the
                             uniform alphabet.
   The classic strategies are embedded: passive is the all-[Skip] script,
   Collude_fixed is [Vote_all], Propose_second is [Vote_and_propose],
   Split_top2 is [Vote_split]. *)

module Strategy = Vv_core.Strategy

type t = Strategy.script_action list

let pp = Strategy.pp_script

(* Alphabet in a fixed, documented order — enumeration order is part of
   the checker's determinism contract. *)
let alphabet ~options ~allow_split =
  if options < 1 then invalid_arg "Script.alphabet: need at least one option";
  let d = options in
  let ids = List.init d Fun.id in
  let votes = List.map (fun i -> Strategy.Vote_all i) ids in
  let proposes = List.map (fun i -> Strategy.Propose_all i) ids in
  let vote_proposes =
    List.concat_map
      (fun i -> List.map (fun j -> Strategy.Vote_and_propose (i, j)) ids)
      ids
  in
  let splits =
    if not allow_split then []
    else
      List.concat_map
        (fun i ->
          List.filter_map
            (fun j -> if i = j then None else Some (Strategy.Vote_split (i, j)))
            ids)
        ids
  in
  (Strategy.Skip :: votes) @ proposes @ vote_proposes @ splits

(* All scripts of exactly [rounds] actions, lexicographic in alphabet
   order.  Scripts with trailing [Skip]s duplicate shorter behaviours;
   the shrinker removes the redundancy from reported counterexamples, and
   keeping the enumeration a plain cartesian power keeps the index <->
   script bijection trivial to audit. *)
let all ~rounds ~alphabet =
  if rounds < 0 then invalid_arg "Script.all: negative rounds";
  let rec go r =
    if r = 0 then [ [] ]
    else
      let rest = go (r - 1) in
      List.concat_map (fun a -> List.map (fun s -> a :: s) rest) alphabet
  in
  go rounds

let count ~rounds ~alphabet =
  let a = List.length alphabet in
  let rec pow acc r = if r = 0 then acc else pow (acc * a) (r - 1) in
  pow 1 rounds
