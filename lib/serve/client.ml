(* Client side of the serve protocol: blocking line-at-a-time
   connections and the load driver behind `vvc load` / campaign E18.

   The driver is deliberately ack-serialized: it never sends submission
   k+1 before the ack for submission k has come back, even though the
   submissions round-robin across many connections.  With concurrent
   in-flight submissions the kernel's cross-socket scheduling would pick
   the arrival order — and with it the position assignment — making the
   committed ledger nondeterministic.  Serializing on acks pins the
   position of every subject, so the same (seed, subjects) always yields
   the same ledger and campaign tables can be golden-pinned.  Decisions
   still stream back concurrently with the submit traffic; throughput
   comes from the server's sharded slot computation, not from racing the
   submit path. *)

module Json = Vv_prelude.Json
module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger

type conn = { fd : Unix.file_descr; buf : Buffer.t }

let rec connect_retry ~deadline addr =
  let fd =
    Unix.socket
      (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  match Unix.connect fd addr with
  | () -> { fd; buf = Buffer.create 4096 }
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
    when Unix.gettimeofday () < deadline ->
      Unix.close fd;
      Unix.sleepf 0.05;
      connect_retry ~deadline addr
  | exception e ->
      Unix.close fd;
      raise e

let connect ?(retry_for = 0.) addr =
  connect_retry ~deadline:(Unix.gettimeofday () +. retry_for) addr

let connect_unix ?retry_for path = connect ?retry_for (Unix.ADDR_UNIX path)

let connect_tcp ?retry_for ?(host = "127.0.0.1") port =
  connect ?retry_for
    (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let send conn line =
  let payload = line ^ "\n" in
  let len = String.length payload in
  let rec push ofs =
    if ofs < len then
      push (ofs + Unix.write_substring conn.fd payload ofs (len - ofs))
  in
  push 0

(* Pop a buffered complete line if one is already waiting. *)
let take_buffered conn =
  let data = Buffer.contents conn.buf in
  match String.index_opt data '\n' with
  | None -> None
  | Some i ->
      Buffer.clear conn.buf;
      Buffer.add_substring conn.buf data (i + 1)
        (String.length data - i - 1);
      Some (String.sub data 0 i)

(* Blocking read of the next line, [None] on EOF or deadline. *)
let recv_line ?(timeout = 30.) conn =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    match take_buffered conn with
    | Some line -> Some line
    | None -> (
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then None
        else
          match Unix.select [ conn.fd ] [] [] remaining with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | [], _, _ -> None
          | _ -> (
              match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
              | 0 -> None
              | len ->
                  Buffer.add_subbytes conn.buf chunk 0 len;
                  loop ()))
  in
  loop ()

(* --- the load driver --- *)

type report = {
  submitted : int;
  decisions : Ledger.slot list;  (* in position order, deduplicated *)
  status : Json.t option;
  elapsed : float;
  rate : float;  (* decisions per second of driver wall-clock *)
  errors : string list;
}

(* Shared sink for decision notifications: every connection receives the
   full broadcast stream, so dedupe by position. *)
type sink = {
  seen : (int, Ledger.slot) Hashtbl.t;
  mutable errs : string list;
}

let absorb sink line =
  match Rpc.decision_of_line line with
  | Some s ->
      if not (Hashtbl.mem sink.seen s.Ledger.index) then
        Hashtbl.replace sink.seen s.Ledger.index s;
      true
  | None -> false

(* Read lines off [conn] (feeding decisions to the sink) until the
   response echoing [id] appears; returns its payload object. *)
let wait_response ?timeout sink conn ~id =
  let rec loop () =
    match recv_line ?timeout conn with
    | None -> Error "connection closed or timed out awaiting response"
    | Some line ->
        if absorb sink line then loop ()
        else (
          match Json.of_string line with
          | Ok (Json.Obj fields) when List.assoc_opt "id" fields = Some id -> (
              match List.assoc_opt "error" fields with
              | Some (Json.Obj e) ->
                  let msg =
                    match List.assoc_opt "message" e with
                    | Some (Json.String m) -> m
                    | _ -> "unspecified server error"
                  in
                  sink.errs <- msg :: sink.errs;
                  Ok Json.Null
              | _ ->
                  Ok
                    (Option.value ~default:Json.Null
                       (List.assoc_opt "result" fields)))
          | _ -> loop ())
  in
  loop ()

let request ?timeout sink conn ~id ~meth params =
  let line =
    Json.to_string
      (Json.Obj
         [ ("id", id); ("method", Json.String meth); ("params", params) ])
  in
  send conn line;
  wait_response ?timeout sink conn ~id

(* One-off status query on an otherwise idle connection, for callers that
   need the daemon's shape (n, t, batch) before building a load. *)
let status ?timeout conn =
  let sink = { seen = Hashtbl.create 1; errs = [] } in
  match
    request ?timeout sink conn ~id:(Json.String "probe") ~meth:"status"
      (Json.Obj [])
  with
  | Error _ as e -> e
  | Ok Json.Null -> Error (String.concat "; " (List.rev sink.errs))
  | Ok payload -> Ok payload

let run_load ?(timeout = 30.) ?(shutdown = false) ~conns subjects =
  match conns with
  | [] -> Error "run_load: need at least one connection"
  | first :: _ ->
      let conn_arr = Array.of_list conns in
      let nconns = Array.length conn_arr in
      let sink = { seen = Hashtbl.create 256; errs = [] } in
      let started = Unix.gettimeofday () in
      let submitted = ref 0 in
      let rec submit_all i = function
        | [] -> Ok ()
        | (subject, inputs) :: rest -> (
            let conn = conn_arr.(i mod nconns) in
            let params =
              Json.Obj
                [
                  ("subject", Json.Int subject);
                  ( "inputs",
                    Json.List
                      (List.map (fun o -> Json.Int (Oid.to_int o)) inputs) );
                ]
            in
            match
              request ~timeout sink conn ~id:(Json.Int i) ~meth:"submit" params
            with
            | Error msg -> Error (Printf.sprintf "submit %d: %s" i msg)
            | Ok _ ->
                incr submitted;
                submit_all (i + 1) rest)
      in
      let ( let* ) = Result.bind in
      let* () = submit_all 0 subjects in
      (* Force the trailing partial slot, then drain the broadcast stream
         on the first connection until every position has decided. *)
      let* _ =
        request ~timeout sink first ~id:(Json.String "flush") ~meth:"flush"
          (Json.Obj [])
      in
      let deadline = Unix.gettimeofday () +. timeout in
      let rec drain () =
        if Hashtbl.length sink.seen >= !submitted then Ok ()
        else if Unix.gettimeofday () > deadline then
          Error
            (Printf.sprintf "drain: %d of %d decisions after %.0fs"
               (Hashtbl.length sink.seen) !submitted timeout)
        else
          match recv_line ~timeout:(deadline -. Unix.gettimeofday ()) first with
          | None ->
              Error
                (Printf.sprintf "drain: stream ended at %d of %d decisions"
                   (Hashtbl.length sink.seen) !submitted)
          | Some line ->
              ignore (absorb sink line);
              drain ()
      in
      let* () = drain () in
      let elapsed = Unix.gettimeofday () -. started in
      let* status =
        request ~timeout sink first ~id:(Json.String "status") ~meth:"status"
          (Json.Obj [])
      in
      let* () =
        if shutdown then
          Result.map ignore
            (request ~timeout sink first ~id:(Json.String "shutdown")
               ~meth:"shutdown" (Json.Obj []))
        else Ok ()
      in
      let decisions =
        Hashtbl.fold (fun _ s acc -> s :: acc) sink.seen []
        |> List.sort (fun a b -> compare a.Ledger.index b.Ledger.index)
      in
      Ok
        {
          submitted = !submitted;
          decisions;
          status = (if status = Json.Null then None else Some status);
          elapsed;
          rate =
            (if elapsed > 0. then float_of_int (List.length decisions) /. elapsed
             else 0.);
          errors = List.rev sink.errs;
        }
