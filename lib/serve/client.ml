(* Client side of the serve protocol: blocking line-at-a-time
   connections and the load drivers behind `vvc load` / campaigns
   E18–E19.

   Two drivers.  [run_load] is ack-serialized: it never sends submission
   k+1 before the ack for submission k has come back, even though the
   submissions round-robin across many connections.  Serializing on acks
   pins the position of every subject, so the same (seed, subjects)
   always yields the same ledger and campaign tables can be
   golden-pinned.  [run_load_racy] embraces the race instead: every
   submission is fired without waiting, the kernel's cross-socket
   scheduling picks the arrival order — and with it the position
   assignment — so only the *set* of decided subjects is reproducible,
   not their positions.  That is the mode that exercises the daemon's
   concurrent submit path hardest; callers verify set-equality of
   subjects rather than a byte-identical log.

   Responses that arrive while waiting for a different id (pipelined
   requests, an out-of-order server) are stashed per connection and
   handed back when their id is finally awaited — never silently
   dropped.  Connection errors (a server dying mid-read) surface as
   [None]/[Error], never as exceptions escaping the driver. *)

module Json = Vv_prelude.Json
module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  stash : (string, Json.t) Hashtbl.t;
      (* responses read while awaiting a different id, keyed by
         rendered id *)
}

let make_conn fd = { fd; buf = Buffer.create 4096; stash = Hashtbl.create 8 }

(* Connect-retry pacing: capped exponential backoff with deterministic
   seeded jitter.  The base delay doubles per attempt up to [retry_cap];
   each slot is then scaled by a jitter factor in [0.5, 1.0) derived
   purely from (seed, attempt), so a fleet of clients racing a
   restarting daemon (`vvc load` with many connections, `vvc serve
   --follow`) de-synchronizes instead of thundering-herding the listen
   backlog — while any single client's schedule stays reproducible. *)
let retry_base = 0.05

let retry_cap = 1.0

let retry_delay ~seed ~attempt =
  if attempt < 1 then invalid_arg "Client.retry_delay: attempt must be >= 1";
  let slot =
    (* min over floats of the doubling series, without overflowing at
       large attempt counts *)
    if float_of_int (attempt - 1) > 40. then retry_cap
    else Float.min (retry_base *. (2. ** float_of_int (attempt - 1))) retry_cap
  in
  let rng = Vv_prelude.Rng.create (Vv_prelude.Rng.derive seed attempt) in
  slot *. (0.5 +. (0.5 *. Vv_prelude.Rng.float rng))

let rec connect_retry ~deadline ~seed ~attempt addr =
  (* A server dying mid-send must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd =
    Unix.socket
      (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  match Unix.connect fd addr with
  | () -> make_conn fd
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
    when Unix.gettimeofday () < deadline ->
      Unix.close fd;
      let pause = retry_delay ~seed ~attempt in
      let remaining = deadline -. Unix.gettimeofday () in
      Unix.sleepf (Float.min pause (Float.max remaining 0.));
      connect_retry ~deadline ~seed ~attempt:(attempt + 1) addr
  | exception e ->
      Unix.close fd;
      raise e

let connect ?(retry_for = 0.) ?retry_seed addr =
  (* Default jitter seed: distinct per process and address, so
     concurrent clients spread out; pass [retry_seed] for a
     reproducible schedule. *)
  let seed =
    match retry_seed with
    | Some s -> s
    | None -> Hashtbl.hash (Unix.getpid (), addr)
  in
  connect_retry
    ~deadline:(Unix.gettimeofday () +. retry_for)
    ~seed ~attempt:1 addr

let connect_unix ?retry_for ?retry_seed path =
  connect ?retry_for ?retry_seed (Unix.ADDR_UNIX path)

let connect_tcp ?retry_for ?retry_seed ?(host = "127.0.0.1") port =
  connect ?retry_for ?retry_seed
    (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let send conn line =
  let payload = line ^ "\n" in
  let len = String.length payload in
  let rec push ofs =
    if ofs < len then
      match Unix.write_substring conn.fd payload ofs (len - ofs) with
      | written -> push (ofs + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> push ofs
  in
  push 0

(* Pop a buffered complete line if one is already waiting. *)
let take_buffered conn =
  let data = Buffer.contents conn.buf in
  match String.index_opt data '\n' with
  | None -> None
  | Some i ->
      Buffer.clear conn.buf;
      Buffer.add_substring conn.buf data (i + 1)
        (String.length data - i - 1);
      Some (String.sub data 0 i)

(* Blocking read of the next line, [None] on EOF, deadline, or a
   connection error (the server dying mid-read must not escape the load
   driver as an exception). *)
let recv_line ?(timeout = 30.) conn =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    match take_buffered conn with
    | Some line -> Some line
    | None -> (
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then None
        else
          match Unix.select [ conn.fd ] [] [] remaining with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | [], _, _ -> None
          | _ -> (
              match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
              | 0 -> None
              | len ->
                  Buffer.add_subbytes conn.buf chunk 0 len;
                  loop ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
              | exception Unix.Unix_error (_, _, _) -> None))
  in
  loop ()

(* --- the load drivers --- *)

type report = {
  submitted : int;
  decisions : Ledger.slot list;  (* in position order, deduplicated *)
  status : Json.t option;
  elapsed : float;
  rate : float;  (* decisions per second of driver wall-clock *)
  errors : string list;
}

(* Shared sink for decision notifications: every connection receives the
   full broadcast stream, so dedupe by position. *)
type sink = {
  seen : (int, Ledger.slot) Hashtbl.t;
  mutable errs : string list;
}

let fresh_sink () = { seen = Hashtbl.create 256; errs = [] }

let absorb sink line =
  match Rpc.decision_of_line line with
  | Some s ->
      if not (Hashtbl.mem sink.seen s.Ledger.index) then
        Hashtbl.replace sink.seen s.Ledger.index s;
      true
  | None -> false

(* Interpret a response object: error payloads are recorded in the sink
   and collapse to [Ok Null], results pass through. *)
let interpret sink fields =
  match List.assoc_opt "error" fields with
  | Some (Json.Obj e) ->
      let msg =
        match List.assoc_opt "message" e with
        | Some (Json.String m) -> m
        | _ -> "unspecified server error"
      in
      sink.errs <- msg :: sink.errs;
      Ok Json.Null
  | _ ->
      Ok (Option.value ~default:Json.Null (List.assoc_opt "result" fields))

(* Read lines off [conn] (feeding decisions to the sink) until the
   response echoing [id] appears; well-formed responses carrying a
   different id are stashed on the connection, not discarded, so a later
   wait for that id finds them. *)
let wait_response_sink ?timeout sink conn ~id =
  let key = Json.to_string id in
  match Hashtbl.find_opt conn.stash key with
  | Some stashed -> (
      Hashtbl.remove conn.stash key;
      match stashed with
      | Json.Obj fields -> interpret sink fields
      | _ -> Error "malformed stashed response")
  | None ->
      let rec loop () =
        match recv_line ?timeout conn with
        | None -> Error "connection closed or timed out awaiting response"
        | Some line ->
            if absorb sink line then loop ()
            else (
              match Json.of_string line with
              | Ok (Json.Obj fields) -> (
                  match List.assoc_opt "id" fields with
                  | Some rid when rid = id -> interpret sink fields
                  | Some rid ->
                      Hashtbl.replace conn.stash (Json.to_string rid)
                        (Json.Obj fields);
                      loop ()
                  | None -> loop ())
              | _ -> loop ())
      in
      loop ()

let request_sink ?timeout sink conn ~id ~meth params =
  let line =
    Json.to_string
      (Json.Obj
         [ ("id", id); ("method", Json.String meth); ("params", params) ])
  in
  match send conn line with
  | () -> wait_response_sink ?timeout sink conn ~id
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send %s: %s" meth (Unix.error_message e))

(* Public one-off forms: decision notifications are dropped, server error
   responses surface as [Error]. *)
let lift_errs sink = function
  | Ok Json.Null when sink.errs <> [] ->
      Error (String.concat "; " (List.rev sink.errs))
  | r -> r

let wait_response ?timeout conn ~id =
  let sink = fresh_sink () in
  lift_errs sink (wait_response_sink ?timeout sink conn ~id)

let request ?timeout conn ~id ~meth params =
  let sink = fresh_sink () in
  lift_errs sink (request_sink ?timeout sink conn ~id ~meth params)

(* One-off status query on an otherwise idle connection, for callers that
   need the daemon's shape (n, t, batch) before building a load. *)
let status ?timeout conn =
  request ?timeout conn ~id:(Json.String "probe") ~meth:"status"
    (Json.Obj [])

(* Replay the committed log from [from]: the decisions stream in order
   immediately after the response, so the next [replaying] decision lines
   are exactly the replay. *)
let catchup ?timeout ?(from = 0) conn =
  let sink = fresh_sink () in
  match
    request_sink ?timeout sink conn ~id:(Json.String "catchup")
      ~meth:"catchup"
      (Json.Obj [ ("from", Json.Int from) ])
  with
  | Error _ as e -> e
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "replaying" fields with
      | Some (Json.Int count) ->
          let rec take acc k =
            if k = 0 then Ok (List.rev acc)
            else
              match recv_line ?timeout conn with
              | None -> Error "catchup: replay stream ended early"
              | Some line -> (
                  match Rpc.decision_of_line line with
                  | Some s -> take (s :: acc) (k - 1)
                  | None -> take acc k)
          in
          take [] count
      | _ -> Error "catchup: response carries no replaying count")
  | Ok _ -> Error (String.concat "; " (List.rev sink.errs))

let sorted_decisions sink =
  Hashtbl.fold (fun _ s acc -> s :: acc) sink.seen []
  |> List.sort (fun (a : Ledger.slot) b -> compare a.Ledger.index b.Ledger.index)

(* Flush the trailing partial slot, drain the broadcast stream on [first]
   until [target] distinct positions have decided, then read the final
   status (and optionally ask the server to stop). *)
let finish ~timeout ~shutdown ~target sink first =
  let ( let* ) = Result.bind in
  let* _ =
    request_sink ~timeout sink first ~id:(Json.String "flush") ~meth:"flush"
      (Json.Obj [])
  in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec drain () =
    if Hashtbl.length sink.seen >= target then Ok ()
    else if Unix.gettimeofday () > deadline then
      Error
        (Printf.sprintf "drain: %d of %d decisions after %.0fs"
           (Hashtbl.length sink.seen) target timeout)
    else
      match recv_line ~timeout:(deadline -. Unix.gettimeofday ()) first with
      | None ->
          Error
            (Printf.sprintf "drain: stream ended at %d of %d decisions"
               (Hashtbl.length sink.seen) target)
      | Some line ->
          ignore (absorb sink line);
          drain ()
  in
  let* () = drain () in
  let* status =
    request_sink ~timeout sink first ~id:(Json.String "status") ~meth:"status"
      (Json.Obj [])
  in
  let* () =
    if shutdown then
      Result.map ignore
        (request_sink ~timeout sink first ~id:(Json.String "shutdown")
           ~meth:"shutdown" (Json.Obj []))
    else Ok ()
  in
  Ok status

let submit_params (subject, inputs) =
  Json.Obj
    [
      ("subject", Json.Int subject);
      ( "inputs",
        Json.List (List.map (fun o -> Json.Int (Oid.to_int o)) inputs) );
    ]

let report_of ~submitted ~status ~started sink =
  let decisions = sorted_decisions sink in
  let elapsed = Unix.gettimeofday () -. started in
  {
    submitted;
    decisions;
    status = (if status = Json.Null then None else Some status);
    elapsed;
    rate =
      (if elapsed > 0. then float_of_int (List.length decisions) /. elapsed
       else 0.);
    errors = List.rev sink.errs;
  }

let run_load ?(timeout = 30.) ?(shutdown = false) ~conns subjects =
  match conns with
  | [] -> Error "run_load: need at least one connection"
  | first :: _ ->
      let conn_arr = Array.of_list conns in
      let nconns = Array.length conn_arr in
      let sink = fresh_sink () in
      let started = Unix.gettimeofday () in
      let submitted = ref 0 in
      let rec submit_all i = function
        | [] -> Ok ()
        | req :: rest -> (
            let conn = conn_arr.(i mod nconns) in
            match
              request_sink ~timeout sink conn ~id:(Json.Int i) ~meth:"submit"
                (submit_params req)
            with
            | Error msg -> Error (Printf.sprintf "submit %d: %s" i msg)
            | Ok _ ->
                incr submitted;
                submit_all (i + 1) rest)
      in
      let ( let* ) = Result.bind in
      let* () = submit_all 0 subjects in
      let* status =
        finish ~timeout ~shutdown ~target:!submitted sink first
      in
      Ok (report_of ~submitted:!submitted ~status ~started sink)

(* --- the racy driver --- *)

(* Read whatever one connection has ready, without blocking: at most one
   read syscall, then every complete buffered line. *)
let poll_lines conn =
  let chunk = Bytes.create 65536 in
  (match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> ()
  | len -> Buffer.add_subbytes conn.buf chunk 0 len
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> ());
  let rec take acc =
    match take_buffered conn with
    | Some line -> take (line :: acc)
    | None -> List.rev acc
  in
  take []

let run_load_racy ?(timeout = 30.) ?(shutdown = false) ~conns subjects =
  match conns with
  | [] -> Error "run_load_racy: need at least one connection"
  | first :: _ ->
      let conn_arr = Array.of_list conns in
      let nconns = Array.length conn_arr in
      let fds = List.map (fun c -> c.fd) conns in
      let sink = fresh_sink () in
      let answered = Hashtbl.create 256 in  (* submit id -> accepted? *)
      let started = Unix.gettimeofday () in
      let process line =
        if not (absorb sink line) then
          match Json.of_string line with
          | Ok (Json.Obj fields) -> (
              match List.assoc_opt "id" fields with
              | Some (Json.Int i) -> (
                  match List.assoc_opt "error" fields with
                  | Some (Json.Obj e) ->
                      let msg =
                        match List.assoc_opt "message" e with
                        | Some (Json.String m) -> m
                        | _ -> "unspecified server error"
                      in
                      sink.errs <-
                        (Printf.sprintf "submit %d: %s" i msg) :: sink.errs;
                      Hashtbl.replace answered i false
                  | _ -> Hashtbl.replace answered i true)
              | _ -> ())
          | _ -> ()
      in
      let rec sweep () =
        match Unix.select fds [] [] 0. with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> sweep ()
        | [], _, _ -> ()
        | readable, _, _ ->
            List.iter
              (fun c ->
                if List.mem c.fd readable then
                  List.iter process (poll_lines c))
              conns;
            sweep ()
      in
      (* Fire every submission without waiting for acks; the kernel's
         cross-socket scheduling picks the arrival order. Opportunistic
         sweeps keep our receive buffers drained while we send. *)
      let total = List.length subjects in
      List.iteri
        (fun i req ->
          let conn = conn_arr.(i mod nconns) in
          let line =
            Json.to_string
              (Json.Obj
                 [
                   ("id", Json.Int i);
                   ("method", Json.String "submit");
                   ("params", submit_params req);
                 ])
          in
          (match send conn line with
          | () -> ()
          | exception Unix.Unix_error (e, _, _) ->
              sink.errs <-
                (Printf.sprintf "submit %d: send: %s" i
                   (Unix.error_message e))
                :: sink.errs;
              Hashtbl.replace answered i false);
          if i mod 32 = 31 then sweep ())
        subjects;
      (* Collect the stragglers: every submission must be answered. *)
      let deadline = Unix.gettimeofday () +. timeout in
      let rec collect () =
        if Hashtbl.length answered >= total then Ok ()
        else if Unix.gettimeofday () > deadline then
          Error
            (Printf.sprintf "racy: %d of %d submissions answered after %.0fs"
               (Hashtbl.length answered) total timeout)
        else
          match Unix.select fds [] [] 0.05 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> collect ()
          | [], _, _ -> collect ()
          | readable, _, _ ->
              List.iter
                (fun c ->
                  if List.mem c.fd readable then
                    List.iter process (poll_lines c))
                conns;
              collect ()
      in
      let ( let* ) = Result.bind in
      let* () = collect () in
      let accepted =
        Hashtbl.fold (fun _ ok n -> if ok then n + 1 else n) answered 0
      in
      let* status =
        finish ~timeout ~shutdown ~target:accepted sink first
      in
      Ok (report_of ~submitted:accepted ~status ~started sink)

let subjects_decided report =
  List.sort compare
    (List.map (fun (s : Ledger.slot) -> s.Ledger.subject) report.decisions)
