(** The `vvc serve` daemon: a single-threaded select loop multiplexing
    line-delimited JSON-RPC clients ({!Rpc}) over a Unix or TCP socket,
    feeding one {!Vv_multishot.Engine}. Submissions queue in arrival
    order; filled slots are decided (sharded across the engine's [jobs]
    domains) after every read burst and their decisions broadcast to all
    clients; [flush]/[status]/[catchup]/[shutdown] are served inline. *)

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket, removing any stale file at
    the path first. *)

val listen_tcp : ?host:string -> int -> Unix.file_descr
(** Bind and listen on [host:port] (default host 127.0.0.1); port [0]
    picks a free port — recover it with {!bound_port}. *)

val bound_port : Unix.file_descr -> int

type outcome = { height : int; served_clients : int }

val serve :
  ?batch:int ->
  ?jobs:int ->
  ?snapshot:string ->
  ?log:(string -> unit) ->
  listen:Unix.file_descr ->
  Vv_multishot.Ledger.config ->
  outcome
(** Run the loop until a [shutdown] request. With [?snapshot], the
    committed log is written atomically after every commit burst and on
    shutdown, and an existing snapshot file is loaded at startup so a
    restarted server resumes at its previous height (raises [Failure]
    when the file exists but disagrees with [cfg]). [batch]/[jobs] are
    {!Vv_multishot.Engine.create} parameters. The caller owns [listen]
    (and the socket file, for Unix sockets). *)
