(** The `vvc serve` daemon: a single-threaded select loop multiplexing
    line-delimited JSON-RPC clients ({!Rpc}) over a Unix or TCP socket,
    feeding one {!Vv_multishot.Engine}. Submissions queue in arrival
    order; filled slots are decided (sharded across the engine's [jobs]
    domains) after every read burst and their decisions broadcast to all
    clients; [flush]/[status]/[catchup]/[shutdown] are served inline.

    Every connection's outbound traffic goes through a bounded
    non-blocking queue ({!Chan}), flushed when select reports the fd
    writable — one stalled consumer can never delay decision broadcast
    to the others. A client whose unsent queue exceeds [max_outq] bytes
    is disconnected (it can reconnect and [catchup]). *)

val default_max_outq : int
(** 1 MiB: the per-client unsent-byte budget used when [?max_outq] is
    omitted (here and in {!Replica}). *)

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket. An existing file at the
    path is probed with a connect first: only a provably stale socket
    (connect refused) is removed; if a live daemon answers, raises
    [Failure] with a clear message instead of stealing its socket. *)

val listen_tcp : ?host:string -> int -> Unix.file_descr
(** Bind and listen on [host:port] (default host 127.0.0.1); port [0]
    picks a free port — recover it with {!bound_port}. *)

val bound_port : Unix.file_descr -> int

type outcome = {
  height : int;
  served_clients : int;
  slow_disconnects : int;
      (** clients dropped by the bounded-outbound-queue policy *)
}

val write_snapshot :
  ?log:(string -> unit) -> Vv_multishot.Engine.t -> string option -> unit
(** Atomically persist the engine's committed log to the path (no-op on
    [None]); write failures are logged, never raised. Shared with
    {!Replica}. *)

val load_engine :
  ?batch:int ->
  ?jobs:int ->
  snapshot:string option ->
  Vv_multishot.Ledger.config ->
  (Vv_multishot.Engine.t, string) result
(** Build the engine a daemon boots with: resumed from [snapshot] when
    the file exists (failing on config mismatch or malformed JSON), a
    fresh engine otherwise. Shared with {!Replica}. *)

val serve :
  ?batch:int ->
  ?jobs:int ->
  ?snapshot:string ->
  ?log:(string -> unit) ->
  ?max_outq:int ->
  ?sndbuf:int ->
  listen:Unix.file_descr ->
  Vv_multishot.Ledger.config ->
  outcome
(** Run the loop until a [shutdown] request. With [?snapshot], the
    committed log is written atomically after every commit burst and on
    shutdown, and an existing snapshot file is loaded at startup so a
    restarted server resumes at its previous height (raises [Failure]
    when the file exists but disagrees with [cfg]). [batch]/[jobs] are
    {!Vv_multishot.Engine.create} parameters; [max_outq] (default
    {!default_max_outq}) bounds each client's unsent bytes before the
    slow-consumer disconnect; [sndbuf] shrinks each accepted socket's
    kernel send buffer (testing/tuning hook). The caller owns [listen]
    (and the socket file, for Unix sockets). *)
