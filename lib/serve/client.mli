(** Client side of the serve protocol: blocking line-at-a-time
    connections and the deterministic load driver behind `vvc load` and
    campaign E18. *)

module Json = Vv_prelude.Json
module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger

type conn

val connect_unix : ?retry_for:float -> string -> conn
(** Connect to a Unix-domain socket, retrying ECONNREFUSED/ENOENT for up
    to [retry_for] seconds (default 0 — fail immediately). Lets a client
    race a daemon that is still starting up. *)

val connect_tcp : ?retry_for:float -> ?host:string -> int -> conn
val close : conn -> unit

val send : conn -> string -> unit
(** Write one line (the newline is appended here). *)

val recv_line : ?timeout:float -> conn -> string option
(** Next complete line, [None] on EOF or after [timeout] (default 30s)
    of silence. *)

val status : ?timeout:float -> conn -> (Json.t, string) result
(** One-off status query: the daemon's shape (n, t, batch, height, ...)
    as the raw result object. *)

type report = {
  submitted : int;
  decisions : Ledger.slot list;  (** in position order, deduplicated *)
  status : Json.t option;  (** the server's final status payload *)
  elapsed : float;
  rate : float;  (** decisions per second of driver wall-clock *)
  errors : string list;  (** error responses the server sent back *)
}

val run_load :
  ?timeout:float ->
  ?shutdown:bool ->
  conns:conn list ->
  (int * Oid.t list) list ->
  (report, string) result
(** Drive a burst of [(subject, inputs)] submissions round-robin across
    [conns], then flush and wait until every position's decision has
    streamed back. Submissions are ack-serialized — submission [k+1] is
    not sent until the ack for [k] arrives — so position assignment (and
    hence the committed ledger) is a pure function of the submission
    list, independent of socket scheduling. With [shutdown] the server
    is asked to stop after the final status read. *)
