(** Client side of the serve protocol: blocking line-at-a-time
    connections and the load drivers behind `vvc load` and campaigns
    E18–E19. *)

module Json = Vv_prelude.Json
module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger

type conn

val retry_delay : seed:int -> attempt:int -> float
(** The connect-retry pause before retry [attempt] (1-based): capped
    exponential backoff (base 0.05s doubling up to 1s) scaled by a
    deterministic jitter factor in [0.5, 1.0) derived purely from
    [(seed, attempt)] — a pure function, so a client's whole schedule
    replays from its seed while distinct seeds de-synchronize a fleet
    racing a restarting daemon. Raises [Invalid_argument] when
    [attempt < 1]. *)

val connect : ?retry_for:float -> ?retry_seed:int -> Unix.sockaddr -> conn
(** Connect to any socket address, retrying ECONNREFUSED/ENOENT for up
    to [retry_for] seconds (default 0 — fail immediately), pacing
    retries by {!retry_delay} (never sleeping past the deadline). Lets a
    client race a daemon that is still starting up without
    thundering-herding it. [retry_seed] fixes the jitter schedule; the
    default derives it from the process id and address. SIGPIPE is set
    to ignore so a dying server surfaces as EPIPE, not process death. *)

val connect_unix : ?retry_for:float -> ?retry_seed:int -> string -> conn
val connect_tcp : ?retry_for:float -> ?retry_seed:int -> ?host:string -> int -> conn
val close : conn -> unit

val send : conn -> string -> unit
(** Write one line (the newline is appended here). May raise
    [Unix.Unix_error] (e.g. EPIPE) if the peer is gone; the request and
    load drivers catch this and surface it as [Error]. *)

val recv_line : ?timeout:float -> conn -> string option
(** Next complete line; [None] on EOF, after [timeout] (default 30s) of
    silence, or on a connection error (ECONNRESET and friends never
    escape as exceptions). *)

val request :
  ?timeout:float ->
  conn ->
  id:Json.t ->
  meth:string ->
  Json.t ->
  (Json.t, string) result
(** One request/response round-trip. Decision notifications read while
    waiting are dropped; responses carrying a different id are stashed
    on the connection for a later {!wait_response}. A server error
    response surfaces as [Error]. *)

val wait_response : ?timeout:float -> conn -> id:Json.t -> (Json.t, string) result
(** Await the response echoing [id]: checks the connection's stash of
    previously-read responses first, then reads the socket. Well-formed
    responses with a different id are stashed, never discarded. *)

val status : ?timeout:float -> conn -> (Json.t, string) result
(** One-off status query: the daemon's shape (n, t, batch, height, ...)
    as the raw result object. *)

val catchup :
  ?timeout:float -> ?from:int -> conn -> (Ledger.slot list, string) result
(** Replay the daemon's committed log from position [from] (default 0):
    sends a catchup request and reads exactly the advertised number of
    decision lines, in position order. The connection should otherwise
    be idle. *)

type report = {
  submitted : int;
  decisions : Ledger.slot list;  (** in position order, deduplicated *)
  status : Json.t option;  (** the server's final status payload *)
  elapsed : float;
  rate : float;  (** decisions per second of driver wall-clock *)
  errors : string list;  (** error responses the server sent back *)
}

val run_load :
  ?timeout:float ->
  ?shutdown:bool ->
  conns:conn list ->
  (int * Oid.t list) list ->
  (report, string) result
(** Drive a burst of [(subject, inputs)] submissions round-robin across
    [conns], then flush and wait until every position's decision has
    streamed back. Submissions are ack-serialized — submission [k+1] is
    not sent until the ack for [k] arrives — so position assignment (and
    hence the committed ledger) is a pure function of the submission
    list, independent of socket scheduling. With [shutdown] the server
    is asked to stop after the final status read. *)

val run_load_racy :
  ?timeout:float ->
  ?shutdown:bool ->
  conns:conn list ->
  (int * Oid.t list) list ->
  (report, string) result
(** Drive the same burst with every submission in flight at once: all
    requests are fired round-robin without awaiting acks, so the
    kernel's cross-socket scheduling picks the arrival order and with it
    the position assignment. The committed ledger is *not* reproducible
    across runs — only the set of decided subjects is (each accepted
    submission decides exactly once). [report.submitted] counts accepted
    submissions; rejected ones are listed in [report.errors]. *)

val subjects_decided : report -> int list
(** The decided subjects, sorted — the run_load_racy invariant is that
    this equals the sorted submitted subject list. *)
