(* Line-delimited JSON-RPC vocabulary of the serve daemon.

   One request or notification per line, every payload a single JSON
   object.  Requests carry a caller-chosen [id] (echoed verbatim in the
   response); decision notifications carry no id — they are streamed to
   every connected client as slots commit.

     {"id":7,"method":"submit","params":{"subject":3,"inputs":[0,1,0]}}
     {"id":7,"result":{"accepted":true,"position":12,"slot":3}}
     {"method":"decision","params":{"index":12,"slot":3,"lane":0,...}}

   Parsing and rendering are pure string functions — the server loop owns
   all I/O — so the hot path is testable and its allocation budget can be
   pinned (test_perf.ml). *)

module Json = Vv_prelude.Json
module Oid = Vv_ballot.Option_id
module Ledger = Vv_multishot.Ledger
module Engine = Vv_multishot.Engine

type incoming =
  | Submit of { id : Json.t; subject : int; inputs : Oid.t list }
  | Flush of { id : Json.t }
  | Status of { id : Json.t }
  | Catchup of { id : Json.t; from : int }
  | Shutdown of { id : Json.t }

let id_of = function
  | Submit { id; _ } | Flush { id } | Status { id } | Catchup { id; _ }
  | Shutdown { id } ->
      id

let parse line =
  match Json.of_string line with
  | Error msg -> Error ("request is not valid JSON: " ^ msg)
  | Ok (Json.Obj fields) -> (
      let id = Option.value ~default:Json.Null (List.assoc_opt "id" fields) in
      let params =
        match List.assoc_opt "params" fields with
        | Some (Json.Obj p) -> p
        | _ -> []
      in
      match List.assoc_opt "method" fields with
      | Some (Json.String "submit") -> (
          match
            (List.assoc_opt "subject" params, List.assoc_opt "inputs" params)
          with
          | Some (Json.Int subject), Some (Json.List items) ->
              let rec ints acc = function
                | [] -> Ok (List.rev acc)
                | Json.Int i :: rest -> ints (Oid.of_int i :: acc) rest
                | _ -> Error "submit: inputs must be a list of integers"
              in
              Result.map
                (fun inputs -> Submit { id; subject; inputs })
                (ints [] items)
          | _ -> Error "submit: params need subject:int and inputs:[int,...]")
      | Some (Json.String "flush") -> Ok (Flush { id })
      | Some (Json.String "status") -> Ok (Status { id })
      | Some (Json.String "catchup") -> (
          match List.assoc_opt "from" params with
          | Some (Json.Int from) -> Ok (Catchup { id; from })
          | None -> Ok (Catchup { id; from = 0 })
          | Some _ -> Error "catchup: from must be an integer")
      | Some (Json.String "shutdown") -> Ok (Shutdown { id })
      | Some (Json.String m) -> Error (Printf.sprintf "unknown method %S" m)
      | _ -> Error "request carries no method")
  | Ok _ -> Error "request is not a JSON object"

(* --- rendering (no trailing newline; the transport adds it) --- *)

let result ~id payload =
  Json.to_string (Json.Obj [ ("id", id); ("result", payload) ])

let error ~id message =
  Json.to_string
    (Json.Obj
       [ ("id", id); ("error", Json.Obj [ ("message", Json.String message) ]) ])

let submit_ack ~id ~position ~slot ~lane =
  result ~id
    (Json.Obj
       [
         ("accepted", Json.Bool true);
         ("position", Json.Int position);
         ("slot", Json.Int slot);
         ("lane", Json.Int lane);
       ])

(* A decision notification: the slot record plus its (slot, lane)
   coordinates under the server's batch size. *)
let decision ~batch (s : Ledger.slot) =
  let fields =
    match Ledger.slot_to_json s with Json.Obj f -> f | _ -> assert false
  in
  Json.to_string
    (Json.Obj
       [
         ("method", Json.String "decision");
         ( "params",
           Json.Obj
             (("slot", Json.Int (s.Ledger.index / batch))
              :: ("lane", Json.Int (s.Ledger.index mod batch))
              :: fields) );
       ])

(* Reconstruct the slot record from a streamed decision line; [None] for
   any other (valid or invalid) line. *)
let decision_of_line line =
  match Json.of_string line with
  | Ok (Json.Obj fields) -> (
      match
        (List.assoc_opt "method" fields, List.assoc_opt "params" fields)
      with
      | Some (Json.String "decision"), Some params -> (
          match Ledger.slot_of_json params with
          | Ok s -> Some s
          | Error _ -> None)
      | _ -> None)
  | _ -> None

let status_json ?(extra = []) engine =
  let st = Engine.stats engine in
  let cfg = Engine.config engine in
  Json.Obj
    (extra
    @ [
      ("n", Json.Int cfg.Ledger.n);
      ("t", Json.Int cfg.Ledger.t);
      ("batch", Json.Int (Engine.batch engine));
      ("height", Json.Int (Engine.height engine));
      ("pending", Json.Int (Engine.pending engine));
      ("committed", Json.Int st.Engine.committed);
      ("skipped", Json.Int st.Engine.skipped);
      ("slots_used", Json.Int st.Engine.slots_used);
      ("attempts_total", Json.Int st.Engine.attempts_total);
      ("rounds_instances", Json.Int st.Engine.rounds_instances);
      ("rounds_sequential", Json.Int st.Engine.rounds_sequential);
      ("rounds_pipelined", Json.Int st.Engine.rounds_pipelined);
      ("all_committed_valid", Json.Bool st.Engine.all_valid);
    ])
