(* A non-blocking line channel: the per-connection plumbing shared by the
   serve daemon ({!Server}) and the follower daemon ({!Replica}).

   Inbound: [read_lines] drains whatever the kernel has buffered and
   returns the complete lines, keeping a partial trailing line for the
   next call.  Outbound: [enqueue] appends one line to a FIFO of unsent
   payloads and opportunistically flushes; the select loop retries
   [flush_write] whenever the fd turns writable.  Writes therefore never
   block the daemon — a consumer that stops reading only grows its own
   queue, and [enqueue] reports [`Overflow] once the queue passes the
   caller's bound so the loop can apply its slow-consumer policy.

   Every syscall retries [EINTR], treats [EAGAIN]/[EWOULDBLOCK] as "no
   progress", and marks the channel dead on any other [Unix_error] (or on
   EOF) instead of raising — a dying peer must never crash the loop. *)

type t = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
  scratch : Bytes.t;  (* per-channel read buffer: channels cross domains *)
  outq : string Queue.t;  (* unsent payloads, each ending in '\n' *)
  mutable out_ofs : int;  (* bytes of the queue head already written *)
  mutable out_bytes : int;  (* total unsent bytes across the queue *)
  mutable alive : bool;
}

let of_fd fd =
  Unix.set_nonblock fd;
  {
    fd;
    inbuf = Buffer.create 256;
    scratch = Bytes.create 65536;
    outq = Queue.create ();
    out_ofs = 0;
    out_bytes = 0;
    alive = true;
  }

let fd t = t.fd
let alive t = t.alive
let kill t = t.alive <- false
let unsent t = t.out_bytes
let want_write t = t.alive && t.out_bytes > 0

let close t =
  t.alive <- false;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let rec flush_write t =
  if t.alive && not (Queue.is_empty t.outq) then
    let head = Queue.peek t.outq in
    let len = String.length head - t.out_ofs in
    match Unix.single_write_substring t.fd head t.out_ofs len with
    | written ->
        t.out_bytes <- t.out_bytes - written;
        if written = len then begin
          ignore (Queue.pop t.outq);
          t.out_ofs <- 0;
          flush_write t
        end
        else t.out_ofs <- t.out_ofs + written
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_write t
    | exception Unix.Unix_error (_, _, _) -> t.alive <- false

let enqueue t ~max_outq line =
  if not t.alive then `Ok
  else begin
    let payload = line ^ "\n" in
    Queue.push payload t.outq;
    t.out_bytes <- t.out_bytes + String.length payload;
    flush_write t;
    if t.out_bytes > max_outq then begin
      t.alive <- false;
      `Overflow
    end
    else `Ok
  end

let rec read_available t =
  match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 ->
      t.alive <- false;
      0
  | len -> len
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_available t
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> 0
  | exception Unix.Unix_error (_, _, _) ->
      t.alive <- false;
      0

let read_lines t =
  if not t.alive then []
  else
    match read_available t with
    | 0 -> []
    | len ->
        Buffer.add_subbytes t.inbuf t.scratch 0 len;
        let data = Buffer.contents t.inbuf in
        Buffer.clear t.inbuf;
        let lines = ref [] in
        let start = ref 0 in
        String.iteri
          (fun i c ->
            if c = '\n' then begin
              lines := String.sub data !start (i - !start) :: !lines;
              start := i + 1
            end)
          data;
        Buffer.add_substring t.inbuf data !start (String.length data - !start);
        List.rev !lines
