(** Non-blocking line channel shared by {!Server} and {!Replica}: buffered
    line reads plus a bounded outbound queue flushed on writability, so a
    slow or dead peer can never block the daemon's select loop. Every
    syscall retries [EINTR]; EOF and connection errors mark the channel
    dead instead of raising. *)

type t

val of_fd : Unix.file_descr -> t
(** Wrap a connected fd, switching it to non-blocking mode. *)

val fd : t -> Unix.file_descr
val alive : t -> bool

val kill : t -> unit
(** Mark dead without closing; the owning loop closes on its next sweep. *)

val close : t -> unit
(** Mark dead and close the fd (close errors ignored). *)

val unsent : t -> int
(** Outbound bytes still queued. *)

val want_write : t -> bool
(** The loop should select this fd for writability. *)

val enqueue : t -> max_outq:int -> string -> [ `Ok | `Overflow ]
(** Queue one line (newline appended) and opportunistically flush.
    [`Overflow] — and a dead channel — once the unsent queue exceeds
    [max_outq] bytes: the slow-consumer disconnect signal. No-op [`Ok] on
    an already-dead channel. *)

val flush_write : t -> unit
(** Push queued bytes until the kernel pushes back ([EAGAIN]) or the
    queue empties. Call when select reports the fd writable. *)

val read_lines : t -> string list
(** Drain readable bytes and return the complete lines, buffering any
    partial trailing line. [[]] when nothing is available — check
    {!alive} afterwards to distinguish quiet from EOF/error. *)
