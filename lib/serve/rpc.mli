(** Line-delimited JSON-RPC vocabulary of the serve daemon: one JSON
    object per line; requests echo their [id], decisions stream as
    id-less notifications. Pure string functions — the server loop owns
    all I/O. *)

module Json = Vv_prelude.Json
module Oid = Vv_ballot.Option_id

type incoming =
  | Submit of { id : Json.t; subject : int; inputs : Oid.t list }
  | Flush of { id : Json.t }
  | Status of { id : Json.t }
  | Catchup of { id : Json.t; from : int }
  | Shutdown of { id : Json.t }

val id_of : incoming -> Json.t
val parse : string -> (incoming, string) result

val result : id:Json.t -> Json.t -> string
val error : id:Json.t -> string -> string
val submit_ack : id:Json.t -> position:int -> slot:int -> lane:int -> string

val decision : batch:int -> Vv_multishot.Ledger.slot -> string
(** The notification streamed for one committed slot. *)

val decision_of_line : string -> Vv_multishot.Ledger.slot option
(** Reconstruct the slot record from a streamed decision line; [None]
    for any other line. *)

val status_json :
  ?extra:(string * Json.t) list -> Vv_multishot.Engine.t -> Json.t
(** The status result payload; [extra] fields (a daemon's role, follower
    link state) are prepended to the engine figures. *)
