(* The `vvc serve` daemon loop: a select-based single-threaded server
   multiplexing line-delimited JSON-RPC clients over a Unix or TCP
   socket, feeding one {!Vv_multishot.Engine}.

   Lifecycle of a submission: a [submit] line is parsed, queued on the
   engine (ack carries the assigned position), and after each read burst
   the engine [step]s — every slot that filled up is decided (sharded
   across the engine's [jobs] domains) and its decisions are broadcast to
   every connected client as notifications.  [flush] forces a partial
   slot; [status] reports engine stats; [catchup ~from] replays the
   committed log to one client (how a restarted consumer or a {!Replica}
   follower resynchronises); [shutdown] snapshots and stops the loop.

   Write path: every connection is a {!Chan} — a non-blocking fd with a
   bounded outbound queue flushed when select reports writability — so a
   stalled consumer can never block decision broadcast to anyone else.
   A client whose unsent queue passes [max_outq] bytes is disconnected
   (the slow-consumer policy, counted in the outcome); it can reconnect
   and [catchup] from wherever it left off.

   Durability: with [?snapshot] the committed log is written atomically
   (tmp + rename, {!Vv_prelude.Io.write_atomic}) after every commit burst
   and on shutdown; at startup an existing snapshot is loaded so a
   restarted server resumes at its previous height.  Pending submissions
   are never snapshotted — unacknowledged-by-decision traffic is the
   clients' to resubmit.

   The loop is deliberately single-threaded: determinism comes from the
   engine (positions in arrival order, slot computation pure), and the
   protocol work itself is what parallelises — across the engine's worker
   domains, not across request handlers. *)

module Json = Vv_prelude.Json
module Io = Vv_prelude.Io
module Ledger = Vv_multishot.Ledger
module Engine = Vv_multishot.Engine

let default_max_outq = 1 lsl 20

(* --- listeners --- *)

(* An existing file at [path] is only removed when it is provably a stale
   socket (connect refused); a live daemon's socket must not be stolen
   out from under it. *)
let listen_unix path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
        Unix.close probe;
        failwith
          (Printf.sprintf
             "%s: a live daemon is already listening on this socket; stop \
              it first or choose another path"
             path)
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
        Unix.close probe;
        Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Unix.close probe
    | exception e ->
        Unix.close probe;
        raise e
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp ?(host = "127.0.0.1") port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  fd

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Server.bound_port: unix socket"

(* --- the serve loop --- *)

type outcome = { height : int; served_clients : int; slow_disconnects : int }

let write_snapshot ?log engine = function
  | None -> ()
  | Some path -> (
      let body = Json.to_string (Engine.to_snapshot engine) ^ "\n" in
      match Io.write_atomic ~path body with
      | Ok () -> ()
      | Error msg -> (
          match log with
          | Some f -> f (Printf.sprintf "snapshot write failed: %s" msg)
          | None -> ()))

let load_engine ?batch ?jobs ~snapshot cfg =
  match snapshot with
  | Some path when Sys.file_exists path -> (
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      match Json.of_string (String.trim body) with
      | Error msg -> Error (Printf.sprintf "%s: not valid JSON: %s" path msg)
      | Ok j -> (
          match Engine.of_snapshot ?batch ?jobs cfg j with
          | Ok engine -> Ok engine
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)))
  | _ -> Ok (Engine.create ?batch ?jobs cfg)

let serve ?batch ?jobs ?snapshot ?log ?(max_outq = default_max_outq) ?sndbuf
    ~listen cfg =
  (* A client that disappears mid-write must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let engine =
    match load_engine ?batch ?jobs ~snapshot cfg with
    | Ok e -> e
    | Error msg -> failwith ("Server.serve: cannot load snapshot: " ^ msg)
  in
  let info msg = match log with Some f -> f msg | None -> () in
  info
    (Printf.sprintf "serving n=%d t=%d batch=%d height=%d"
       cfg.Ledger.n cfg.Ledger.t (Engine.batch engine) (Engine.height engine));
  let clients : (Unix.file_descr, Chan.t) Hashtbl.t = Hashtbl.create 64 in
  let served = ref 0 in
  let slow = ref 0 in
  let running = ref true in
  let send ch line =
    match Chan.enqueue ch ~max_outq line with
    | `Ok -> ()
    | `Overflow ->
        incr slow;
        info
          (Printf.sprintf
             "disconnecting slow consumer (%d unsent bytes > %d budget)"
             (Chan.unsent ch) max_outq)
  in
  let broadcast line = Hashtbl.iter (fun _ ch -> send ch line) clients in
  let commit decided =
    if decided <> [] then begin
      List.iter
        (fun s -> broadcast (Rpc.decision ~batch:(Engine.batch engine) s))
        decided;
      write_snapshot ?log engine snapshot
    end
  in
  let handle ch line =
    if String.trim line <> "" then
      match Rpc.parse line with
      | Error msg -> send ch (Rpc.error ~id:Json.Null msg)
      | Ok (Rpc.Submit { id; subject; inputs }) -> (
          match Engine.submit engine ~subject inputs with
          | position ->
              send ch
                (Rpc.submit_ack ~id ~position
                   ~slot:(Engine.slot_of engine position)
                   ~lane:(Engine.lane_of engine position))
          | exception Invalid_argument msg -> send ch (Rpc.error ~id msg))
      | Ok (Rpc.Flush { id }) ->
          let decided = Engine.flush engine in
          commit decided;
          send ch
            (Rpc.result ~id
               (Json.Obj [ ("flushed", Json.Int (List.length decided)) ]))
      | Ok (Rpc.Status { id }) ->
          send ch
            (Rpc.result ~id
               (Rpc.status_json
                  ~extra:[ ("role", Json.String "primary") ]
                  engine))
      | Ok (Rpc.Catchup { id; from }) ->
          let replay = Engine.decisions_from engine from in
          send ch
            (Rpc.result ~id
               (Json.Obj [ ("replaying", Json.Int (List.length replay)) ]));
          List.iter
            (fun s -> send ch (Rpc.decision ~batch:(Engine.batch engine) s))
            replay
      | Ok (Rpc.Shutdown { id }) ->
          send ch
            (Rpc.result ~id (Json.Obj [ ("stopping", Json.Bool true) ]));
          running := false
  in
  let accept () =
    match Unix.accept listen with
    | cfd, _ ->
        (match sndbuf with
        | Some bytes -> (
            try Unix.setsockopt_int cfd Unix.SO_SNDBUF bytes
            with Unix.Unix_error _ -> ())
        | None -> ());
        incr served;
        Hashtbl.replace clients cfd (Chan.of_fd cfd)
    | exception
        Unix.Unix_error
          ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED),
           _, _) ->
        ()
  in
  while !running do
    let rfds =
      Hashtbl.fold
        (fun fd ch acc -> if Chan.alive ch then fd :: acc else acc)
        clients [ listen ]
    in
    let wfds =
      Hashtbl.fold
        (fun fd ch acc -> if Chan.want_write ch then fd :: acc else acc)
        clients []
    in
    match Unix.select rfds wfds [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt clients fd with
            | Some ch -> Chan.flush_write ch
            | None -> ())
          writable;
        List.iter
          (fun fd ->
            if fd = listen then accept ()
            else
              match Hashtbl.find_opt clients fd with
              | None -> ()
              | Some ch -> List.iter (handle ch) (Chan.read_lines ch))
          readable;
        (* Decide every slot the burst filled, then drop dead clients. *)
        commit (Engine.step engine);
        let dead =
          Hashtbl.fold
            (fun fd ch acc -> if Chan.alive ch then acc else (fd, ch) :: acc)
            clients []
        in
        List.iter
          (fun (fd, ch) ->
            Chan.close ch;
            Hashtbl.remove clients fd)
          dead
  done;
  write_snapshot ?log engine snapshot;
  (* Last-gasp flush so shutdown responses reach clients that are reading. *)
  Hashtbl.iter
    (fun _ ch ->
      Chan.flush_write ch;
      Chan.close ch)
    clients;
  info (Printf.sprintf "stopped at height %d" (Engine.height engine));
  {
    height = Engine.height engine;
    served_clients = !served;
    slow_disconnects = !slow;
  }
