(* The `vvc serve` daemon loop: a select-based single-threaded server
   multiplexing line-delimited JSON-RPC clients over a Unix or TCP
   socket, feeding one {!Vv_multishot.Engine}.

   Lifecycle of a submission: a [submit] line is parsed, queued on the
   engine (ack carries the assigned position), and after each read burst
   the engine [step]s — every slot that filled up is decided (sharded
   across the engine's [jobs] domains) and its decisions are broadcast to
   every connected client as notifications.  [flush] forces a partial
   slot; [status] reports engine stats; [catchup ~from] replays the
   committed log to one client (how a restarted consumer resynchronises);
   [shutdown] snapshots and stops the loop.

   Durability: with [?snapshot] the committed log is written atomically
   (tmp + rename, {!Vv_prelude.Io.write_atomic}) after every commit burst
   and on shutdown; at startup an existing snapshot is loaded so a
   restarted server resumes at its previous height.  Pending submissions
   are never snapshotted — unacknowledged-by-decision traffic is the
   clients' to resubmit.

   The loop is deliberately single-threaded: determinism comes from the
   engine (positions in arrival order, slot computation pure), and the
   protocol work itself is what parallelises — across the engine's worker
   domains, not across request handlers. *)

module Json = Vv_prelude.Json
module Io = Vv_prelude.Io
module Ledger = Vv_multishot.Ledger
module Engine = Vv_multishot.Engine

(* --- listeners --- *)

let listen_unix path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp ?(host = "127.0.0.1") port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  fd

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Server.bound_port: unix socket"

(* --- per-client connection state --- *)

type client = {
  fd : Unix.file_descr;
  pending : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
  mutable alive : bool;
}

let send client line =
  if client.alive then
    let payload = line ^ "\n" in
    let len = String.length payload in
    let rec push ofs =
      if ofs < len then
        match Unix.write_substring client.fd payload ofs (len - ofs) with
        | written -> push (ofs + written)
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            client.alive <- false
    in
    push 0

(* Read whatever is available; returns the complete lines and marks the
   client dead on EOF or connection errors. *)
let read_lines client =
  let chunk = Bytes.create 65536 in
  match Unix.read client.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      client.alive <- false;
      []
  | 0 ->
      client.alive <- false;
      []
  | len ->
      Buffer.add_subbytes client.pending chunk 0 len;
      let data = Buffer.contents client.pending in
      Buffer.clear client.pending;
      let lines = ref [] in
      let start = ref 0 in
      String.iteri
        (fun i c ->
          if c = '\n' then begin
            lines := String.sub data !start (i - !start) :: !lines;
            start := i + 1
          end)
        data;
      Buffer.add_substring client.pending data !start
        (String.length data - !start);
      List.rev !lines

(* --- the serve loop --- *)

type outcome = { height : int; served_clients : int }

let write_snapshot ?log engine = function
  | None -> ()
  | Some path -> (
      let body = Json.to_string (Engine.to_snapshot engine) ^ "\n" in
      match Io.write_atomic ~path body with
      | Ok () -> ()
      | Error msg -> (
          match log with
          | Some f -> f (Printf.sprintf "snapshot write failed: %s" msg)
          | None -> ()))

let load_engine ?batch ?jobs ~snapshot cfg =
  match snapshot with
  | Some path when Sys.file_exists path -> (
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      match Json.of_string (String.trim body) with
      | Error msg -> Error (Printf.sprintf "%s: not valid JSON: %s" path msg)
      | Ok j -> (
          match Engine.of_snapshot ?batch ?jobs cfg j with
          | Ok engine -> Ok engine
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)))
  | _ -> Ok (Engine.create ?batch ?jobs cfg)

let serve ?batch ?jobs ?snapshot ?log ~listen cfg =
  (* A client that disappears mid-write must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let engine =
    match load_engine ?batch ?jobs ~snapshot cfg with
    | Ok e -> e
    | Error msg -> failwith ("Server.serve: cannot load snapshot: " ^ msg)
  in
  let info msg = match log with Some f -> f msg | None -> () in
  info
    (Printf.sprintf "serving n=%d t=%d batch=%d height=%d"
       cfg.Ledger.n cfg.Ledger.t (Engine.batch engine) (Engine.height engine));
  let clients = ref [] in
  let served = ref 0 in
  let running = ref true in
  let broadcast line =
    List.iter (fun c -> send c line) !clients
  in
  let commit decided =
    if decided <> [] then begin
      List.iter
        (fun s -> broadcast (Rpc.decision ~batch:(Engine.batch engine) s))
        decided;
      write_snapshot ?log engine snapshot
    end
  in
  let handle client line =
    if String.trim line <> "" then
      match Rpc.parse line with
      | Error msg -> send client (Rpc.error ~id:Json.Null msg)
      | Ok (Rpc.Submit { id; subject; inputs }) -> (
          match Engine.submit engine ~subject inputs with
          | position ->
              send client
                (Rpc.submit_ack ~id ~position
                   ~slot:(Engine.slot_of engine position)
                   ~lane:(Engine.lane_of engine position))
          | exception Invalid_argument msg -> send client (Rpc.error ~id msg))
      | Ok (Rpc.Flush { id }) ->
          let decided = Engine.flush engine in
          commit decided;
          send client
            (Rpc.result ~id
               (Json.Obj [ ("flushed", Json.Int (List.length decided)) ]))
      | Ok (Rpc.Status { id }) ->
          send client (Rpc.result ~id (Rpc.status_json engine))
      | Ok (Rpc.Catchup { id; from }) ->
          let replay = Engine.decisions_from engine from in
          send client
            (Rpc.result ~id
               (Json.Obj [ ("replaying", Json.Int (List.length replay)) ]));
          List.iter
            (fun s -> send client (Rpc.decision ~batch:(Engine.batch engine) s))
            replay
      | Ok (Rpc.Shutdown { id }) ->
          send client
            (Rpc.result ~id (Json.Obj [ ("stopping", Json.Bool true) ]));
          running := false
  in
  while !running do
    let fds = listen :: List.map (fun c -> c.fd) !clients in
    match Unix.select fds [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        List.iter
          (fun fd ->
            if fd = listen then begin
              let cfd, _ = Unix.accept listen in
              incr served;
              clients :=
                !clients @ [ { fd = cfd; pending = Buffer.create 256; alive = true } ]
            end
            else
              match List.find_opt (fun c -> c.fd = fd) !clients with
              | None -> ()
              | Some client ->
                  List.iter (handle client) (read_lines client))
          readable;
        (* Decide every slot the burst filled, then drop dead clients. *)
        commit (Engine.step engine);
        List.iter
          (fun c -> if not c.alive then Unix.close c.fd)
          !clients;
        clients := List.filter (fun c -> c.alive) !clients
  done;
  write_snapshot ?log engine snapshot;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !clients;
  info (Printf.sprintf "stopped at height %d" (Engine.height engine));
  { height = Engine.height engine; served_clients = !served }
