(** The follower daemon (`vvc serve --follow ADDR`): connects to a
    primary {!Server} with retry, resyncs via [catchup] from its own
    snapshot height, applies the primary's decision stream to a local
    committed log ({!Vv_multishot.Engine.append_committed}), and serves
    read-only [status]/[catchup] to its own clients over the same
    {!Rpc} protocol. [submit] is refused; [flush] is a no-op.

    When the primary dies, the follower keeps serving reads and probes
    the primary address every [retry_every] seconds; after the primary
    restarts from its snapshot, the follower re-catches-up from the
    height it reached, converging to a log byte-identical to the
    primary's (pinned by campaign E19). *)

type outcome = {
  height : int;
  served_clients : int;
  catchups : int;  (** successful primary connections, each one resync *)
}

val run :
  ?batch:int ->
  ?jobs:int ->
  ?snapshot:string ->
  ?log:(string -> unit) ->
  ?max_outq:int ->
  ?retry_every:float ->
  primary:Unix.sockaddr ->
  listen:Unix.file_descr ->
  Vv_multishot.Ledger.config ->
  outcome
(** Run until a [shutdown] request from a client. [cfg]/[batch] must
    match the primary's (the snapshot config echo enforces this across
    restarts). With [?snapshot] the replicated log persists atomically
    after every applied burst, and an existing snapshot seeds the resync
    height at boot. [retry_every] (default 0.25 s) paces reconnection
    probes; [max_outq] is the {!Server.serve} slow-consumer bound for
    this follower's own clients. The caller owns [listen]. *)
