(* The follower daemon behind `vvc serve --follow ADDR`: replicate a
   primary's committed log and serve it read-only.

   The loop is the same select shape as {!Server}, with one extra
   channel: the upstream connection to the primary.  On (re)connect the
   follower sends a single [catchup] request from its current height;
   the primary replies with the missing decisions and then keeps the
   follower on its broadcast list, so the replay and the live stream
   arrive as one ordered, gapless sequence of decision lines.  Each is
   applied with {!Vv_multishot.Engine.append_committed} — stale indices
   (overlap after a race) are ignored, a gap means the streams got out
   of sync and forces a reconnect-and-re-catchup.

   When the primary dies the follower keeps serving reads at its last
   height and probes the primary address every [retry_every] seconds; a
   primary restarted from its snapshot answers the next [catchup] from
   whatever height the follower reached, so the follower's log converges
   to the primary's byte-for-byte (campaign E19 pins this).

   Client-facing surface: [status] (with follower role fields),
   [catchup] and [shutdown] behave as on the primary; [flush] is a no-op
   (nothing pends locally); [submit] is refused — followers are
   read-only by construction, there is no write forwarding. *)

module Json = Vv_prelude.Json
module Ledger = Vv_multishot.Ledger
module Engine = Vv_multishot.Engine

type outcome = { height : int; served_clients : int; catchups : int }

let catchup_request ~from =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.String "resync");
         ("method", Json.String "catchup");
         ("params", Json.Obj [ ("from", Json.Int from) ]);
       ])

let run ?batch ?jobs ?snapshot ?log ?(max_outq = Server.default_max_outq)
    ?(retry_every = 0.25) ~primary ~listen cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let engine =
    match Server.load_engine ?batch ?jobs ~snapshot cfg with
    | Ok e -> e
    | Error msg -> failwith ("Replica.run: cannot load snapshot: " ^ msg)
  in
  let info msg = match log with Some f -> f msg | None -> () in
  info
    (Printf.sprintf "following: n=%d t=%d batch=%d height=%d"
       cfg.Ledger.n cfg.Ledger.t (Engine.batch engine) (Engine.height engine));
  let clients : (Unix.file_descr, Chan.t) Hashtbl.t = Hashtbl.create 64 in
  let served = ref 0 in
  let catchups = ref 0 in
  let upstream : Chan.t option ref = ref None in
  let next_retry = ref 0. in
  let running = ref true in
  let send ch line =
    match Chan.enqueue ch ~max_outq line with
    | `Ok -> ()
    | `Overflow -> info "disconnecting slow consumer"
  in
  let broadcast line = Hashtbl.iter (fun _ ch -> send ch line) clients in
  let drop_upstream why =
    match !upstream with
    | None -> ()
    | Some ch ->
        Chan.close ch;
        upstream := None;
        next_retry := Unix.gettimeofday () +. retry_every;
        info (Printf.sprintf "primary link down (%s); retrying" why)
  in
  let connect_upstream () =
    let fd =
      Unix.socket
        (match primary with
        | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
        | Unix.ADDR_INET _ -> Unix.PF_INET)
        Unix.SOCK_STREAM 0
    in
    match Unix.connect fd primary with
    | () ->
        let ch = Chan.of_fd fd in
        incr catchups;
        let from = Engine.height engine in
        ignore (Chan.enqueue ch ~max_outq (catchup_request ~from));
        upstream := Some ch;
        info (Printf.sprintf "connected to primary, catching up from %d" from)
    | exception Unix.Unix_error (_, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        next_retry := Unix.gettimeofday () +. retry_every
  in
  (* Apply one upstream line; true when it extended the committed log. *)
  let apply line =
    match Rpc.decision_of_line line with
    | None -> false (* the catchup ack, or noise — not a decision *)
    | Some s -> (
        match Engine.append_committed engine s with
        | Ok `Applied ->
            broadcast (Rpc.decision ~batch:(Engine.batch engine) s);
            true
        | Ok `Stale -> false
        | Error msg ->
            drop_upstream msg;
            false)
  in
  let handle ch line =
    if String.trim line <> "" then
      match Rpc.parse line with
      | Error msg -> send ch (Rpc.error ~id:Json.Null msg)
      | Ok (Rpc.Submit { id; _ }) ->
          send ch
            (Rpc.error ~id "follower is read-only: submit to the primary")
      | Ok (Rpc.Flush { id }) ->
          (* Nothing pends locally; answer so generic drivers can proceed. *)
          send ch (Rpc.result ~id (Json.Obj [ ("flushed", Json.Int 0) ]))
      | Ok (Rpc.Status { id }) ->
          let connected =
            match !upstream with Some ch -> Chan.alive ch | None -> false
          in
          send ch
            (Rpc.result ~id
               (Rpc.status_json
                  ~extra:
                    [
                      ("role", Json.String "follower");
                      ("primary_connected", Json.Bool connected);
                      ("catchups", Json.Int !catchups);
                    ]
                  engine))
      | Ok (Rpc.Catchup { id; from }) ->
          let replay = Engine.decisions_from engine from in
          send ch
            (Rpc.result ~id
               (Json.Obj [ ("replaying", Json.Int (List.length replay)) ]));
          List.iter
            (fun s -> send ch (Rpc.decision ~batch:(Engine.batch engine) s))
            replay
      | Ok (Rpc.Shutdown { id }) ->
          send ch
            (Rpc.result ~id (Json.Obj [ ("stopping", Json.Bool true) ]));
          running := false
  in
  let accept () =
    match Unix.accept listen with
    | cfd, _ ->
        incr served;
        Hashtbl.replace clients cfd (Chan.of_fd cfd)
    | exception
        Unix.Unix_error
          ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED),
           _, _) ->
        ()
  in
  while !running do
    (match !upstream with
    | Some ch when Chan.alive ch -> ()
    | Some _ -> drop_upstream "closed"
    | None ->
        if Unix.gettimeofday () >= !next_retry then connect_upstream ());
    let up = !upstream in
    let rfds =
      Hashtbl.fold
        (fun fd ch acc -> if Chan.alive ch then fd :: acc else acc)
        clients
        (match up with
        | Some ch when Chan.alive ch -> [ listen; Chan.fd ch ]
        | _ -> [ listen ])
    in
    let wfds =
      Hashtbl.fold
        (fun fd ch acc -> if Chan.want_write ch then fd :: acc else acc)
        clients
        (match up with
        | Some ch when Chan.want_write ch -> [ Chan.fd ch ]
        | _ -> [])
    in
    let timeout =
      if up = None then Float.max 0.02 (Float.min 1.0 retry_every) else 1.0
    in
    match Unix.select rfds wfds [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        List.iter
          (fun fd ->
            match up with
            | Some ch when Chan.fd ch = fd -> Chan.flush_write ch
            | _ -> (
                match Hashtbl.find_opt clients fd with
                | Some ch -> Chan.flush_write ch
                | None -> ()))
          writable;
        let applied = ref 0 in
        List.iter
          (fun fd ->
            if fd = listen then accept ()
            else
              match up with
              | Some ch when Chan.fd ch = fd ->
                  List.iter
                    (fun line -> if apply line then incr applied)
                    (Chan.read_lines ch);
                  if not (Chan.alive ch) then drop_upstream "EOF"
              | _ -> (
                  match Hashtbl.find_opt clients fd with
                  | None -> ()
                  | Some ch -> List.iter (handle ch) (Chan.read_lines ch)))
          readable;
        if !applied > 0 then Server.write_snapshot ?log engine snapshot;
        let dead =
          Hashtbl.fold
            (fun fd ch acc -> if Chan.alive ch then acc else (fd, ch) :: acc)
            clients []
        in
        List.iter
          (fun (fd, ch) ->
            Chan.close ch;
            Hashtbl.remove clients fd)
          dead
  done;
  Server.write_snapshot ?log engine snapshot;
  (match !upstream with Some ch -> Chan.close ch | None -> ());
  Hashtbl.iter
    (fun _ ch ->
      Chan.flush_write ch;
      Chan.close ch)
    clients;
  info (Printf.sprintf "follower stopped at height %d" (Engine.height engine));
  {
    height = Engine.height engine;
    served_clients = !served;
    catchups = !catchups;
  }
