(* vvc — command-line driver for the voting-validity reproduction.

   Subcommands:
     list                        enumerate the experiments (DESIGN.md §4)
     exp <id> [--format=F]       regenerate one figure/experiment
     all                         regenerate everything
     bounds -n N -t T [...]      evaluate every tolerance bound at a point
     run [...]                   one protocol execution with full control
     check [--profile=P]         exhaustive small-model checker (vv_check)
     chaos [--profile=P]         chaos-substrate resilience campaign (E17)
     gst [--profile=P]           network-agnostic validity campaign (E20)
     serve --socket S [...]      multi-shot ledger as a JSON-RPC daemon
     load --socket S [...]       drive a running daemon, report decisions/s

   The campaign subcommands (exp, all, chaos, check) share one flag
   bundle — --format/--profile/--jobs/--seed/--progress/--out — parsed
   in {!Cli}; the point subcommands (bounds, run, ledger, radio) take
   the shared --format term only. *)

module C = Cmdliner
module Oid = Vv_ballot.Option_id
module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Bounds = Vv_core.Bounds
module Table = Vv_prelude.Table
module Json = Vv_prelude.Json
module Emit = Vv_exec.Emit
module Campaign = Vv_exec.Campaign

let format_term = Cli.format_term

(* --- list --- *)

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter
      (fun c -> Fmt.pr "%-8s %s@." (Campaign.id c) (Campaign.what c))
      Vv_analysis.Experiments.all
  in
  C.Cmd.v (C.Cmd.info "list" ~doc) C.Term.(const run $ const ())

(* --- exp --- *)

let exp_cmd =
  let doc = "Run one experiment campaign and print its table(s)." in
  let id =
    C.Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id (see $(b,vvc list)).")
  in
  let run id opts =
    match Vv_analysis.Experiments.find id with
    | None ->
        Fmt.epr "unknown experiment %S; try: %a@." id
          Fmt.(list ~sep:sp string)
          Vv_analysis.Experiments.ids;
        exit 1
    | Some c -> Cli.handle opts c
  in
  C.Cmd.v (C.Cmd.info "exp" ~doc)
    C.Term.(const run $ id $ Cli.opts_term ~default_profile:Campaign.Full)

(* --- all --- *)

let all_cmd =
  let doc = "Run every experiment campaign (the full reproduction harness)." in
  let csv_dir =
    C.Arg.(value
           & opt (some string) None
           & info [ "csv-dir" ]
               ~doc:"Additionally write every table as CSV under this \
                     directory (created if missing).")
  in
  let run (opts : Cli.opts) csv_dir =
    (match csv_dir with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    let write_csvs c tables =
      match csv_dir with
      | None -> ()
      | Some dir ->
          List.iteri
            (fun i t ->
              let path =
                Filename.concat dir (Fmt.str "%s_%d.csv" (Campaign.id c) i)
              in
              match Vv_prelude.Io.write_atomic ~path (Table.to_csv t) with
              | Ok () -> Fmt.epr "[written %s]@." path
              | Error msg ->
                  Fmt.epr "vvc: cannot write %s: %s@." path msg;
                  exit 1)
            tables
    in
    let results =
      List.map
        (fun c ->
          let outcome = Cli.run_campaign opts c in
          let e = outcome.Campaign.emitted in
          write_csvs c e.Campaign.tables;
          (c, e))
        Vv_analysis.Experiments.all
    in
    let report =
      match opts.Cli.format with
      | Emit.Json ->
          (* One top-level array: [{id; what; tables}]. *)
          let objs =
            List.map
              (fun (c, (e : Campaign.emitted)) ->
                Json.Obj
                  [
                    ("id", Json.String (Campaign.id c));
                    ("what", Json.String (Campaign.what c));
                    ( "tables",
                      Json.List (List.map Table.to_json e.Campaign.tables) );
                  ])
              results
          in
          Json.to_string (Json.List objs) ^ "\n"
      | Emit.Table ->
          String.concat ""
            (List.map
               (fun (c, (e : Campaign.emitted)) ->
                 Fmt.str "@.### %s — %s@.@." (Campaign.id c) (Campaign.what c)
                 ^ Emit.tables_string Emit.Table e.Campaign.tables)
               results)
      | Emit.Csv ->
          String.concat ""
            (List.map
               (fun (_, (e : Campaign.emitted)) ->
                 Emit.tables_string Emit.Csv e.Campaign.tables)
               results)
    in
    Cli.output opts report;
    if List.exists (fun (_, (e : Campaign.emitted)) -> not e.Campaign.ok) results
    then exit 1
  in
  C.Cmd.v (C.Cmd.info "all" ~doc)
    C.Term.(const run $ Cli.opts_term ~default_profile:Campaign.Full $ csv_dir)

(* --- bounds --- *)

let bounds_cmd =
  let doc = "Evaluate the paper's tolerance bounds at one parameter point." in
  let n = C.Arg.(required & opt (some int) None & info [ "n" ] ~doc:"Total nodes N.") in
  let t = C.Arg.(required & opt (some int) None & info [ "t" ] ~doc:"Tolerance t.") in
  let bg = C.Arg.(value & opt int 0 & info [ "bg" ] ~doc:"Honest runner-up votes B_G.") in
  let cg = C.Arg.(value & opt int 0 & info [ "cg" ] ~doc:"Honest other votes C_G.") in
  let run format n t bg cg =
    let tab =
      Table.create ~title:(Fmt.str "Bounds at N=%d t=%d B_G=%d C_G=%d" n t bg cg)
        ~headers:[ "kind"; "bound (N must exceed)"; "satisfied"; "t_vd"; "required gap" ]
        ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
        ()
    in
    List.iter
      (fun kind ->
        Table.add_row tab
          [
            Fmt.str "%a" Bounds.pp_kind kind;
            Table.icell (Bounds.bound kind ~t ~bg ~cg);
            Table.bcell (Bounds.satisfied kind ~n ~t ~bg ~cg);
            Table.fcell ~decimals:2 (Bounds.vote_dispersion_tolerance kind ~bg ~cg);
            Table.icell (Bounds.required_gap kind ~t);
          ])
      [ Bounds.Bft; Bounds.Cft; Bounds.Sct ];
    Emit.table format tab
  in
  C.Cmd.v (C.Cmd.info "bounds" ~doc)
    C.Term.(const run $ format_term $ n $ t $ bg $ cg)

(* --- run --- *)

let protocol_conv =
  let parse = function
    | "algo1" -> Ok Runner.Algo1
    | "algo2" | "sct" -> Ok Runner.Algo2_sct
    | "algo3" | "incremental" -> Ok Runner.Algo3_incremental
    | "algo4" | "local" -> Ok Runner.Algo4_local
    | "cft" -> Ok Runner.Cft
    | "sct-incremental" -> Ok Runner.Sct_incremental
    | s -> Error (`Msg (Fmt.str "unknown protocol %S" s))
  in
  C.Arg.conv (parse, fun ppf p -> Fmt.string ppf (Runner.protocol_label p))

let strategy_conv =
  let parse s =
    match Strategy.of_name s with
    | Some st -> Ok st
    | None -> Error (`Msg (Fmt.str "unknown strategy %S (one of: %s)" s
                             (String.concat ", " Strategy.all_names)))
  in
  C.Arg.conv (parse, Strategy.pp)

let bb_conv =
  let parse s =
    match Vv_bb.Bb.of_name s with
    | Some b -> Ok b
    | None -> Error (`Msg (Fmt.str "unknown substrate %S" s))
  in
  C.Arg.conv (parse, Vv_bb.Bb.pp)

let inputs_conv =
  let parse s =
    try
      Ok
        (String.split_on_char ',' s
        |> List.map (fun x -> Oid.of_int (int_of_string (String.trim x))))
    with _ -> Error (`Msg "inputs must be a comma-separated list of ints")
  in
  C.Arg.conv (parse, fun ppf l -> Fmt.(list ~sep:comma Oid.pp) ppf l)

let run_cmd =
  let doc = "Execute one consensus instance and report every property." in
  let protocol =
    C.Arg.(value & opt protocol_conv Runner.Algo1
           & info [ "protocol"; "p" ] ~doc:"Protocol: algo1|algo2|algo3|algo4|cft.")
  in
  let strategy =
    C.Arg.(value & opt strategy_conv Strategy.Collude_second
           & info [ "strategy"; "s" ]
               ~doc:"Adversary: passive|collude-second|split-top2|propose-second|random.")
  in
  let bb =
    C.Arg.(value & opt bb_conv Vv_bb.Bb.Dolev_strong
           & info [ "bb" ] ~doc:"Phase-1 substrate: dolev-strong|eig|phase-king.")
  in
  let t = C.Arg.(value & opt int 1 & info [ "t" ] ~doc:"Declared tolerance t.") in
  let f = C.Arg.(value & opt (some int) None & info [ "f" ] ~doc:"Actual Byzantine count (default t).") in
  let inputs =
    C.Arg.(value
           & opt inputs_conv
               (List.map Oid.of_int [ 0; 0; 0; 1; 1; 2; 3 ])
           & info [ "inputs"; "i" ] ~doc:"Honest inputs, e.g. 0,0,0,1.")
  in
  let delay_hi =
    C.Arg.(value & opt int 1
           & info [ "delay" ] ~doc:"Delay bound (1 = synchronous, k = uniform 1..k).")
  in
  let seed = C.Arg.(value & opt int 0x5eed & info [ "seed" ] ~doc:"PRNG seed.") in
  let trace =
    C.Arg.(value & flag
           & info [ "trace" ] ~doc:"Print per-round engine activity to stderr.")
  in
  let oid_json o = Json.Int (Oid.to_int o) in
  let run_json protocol strategy ~t ~f ~seed (r : Runner.outcome) =
    Json.Obj
      [
        ( "spec",
          Json.Obj
            [
              ("protocol", Json.String (Runner.protocol_label protocol));
              ("strategy", Json.String (Fmt.str "%a" Strategy.pp strategy));
              ("t", Json.Int t);
              ("f", Json.Int f);
              ("seed", Json.Int seed);
              ("honest_inputs", Json.List (List.map oid_json r.Runner.honest_inputs));
            ] );
        ( "outcome",
          Json.Obj
            [
              ( "outputs",
                Json.List
                  (List.map
                     (fun o -> Json.of_int_option (Option.map Oid.to_int o))
                     r.Runner.outputs) );
              ("termination", Json.Bool r.Runner.termination);
              ("agreement", Json.Bool r.Runner.agreement);
              ("voting_validity", Json.Bool r.Runner.voting_validity);
              ("voting_validity_tb", Json.Bool r.Runner.voting_validity_tb);
              ("strong_validity", Json.Bool r.Runner.strong_validity);
              ("safety_admissible", Json.Bool r.Runner.safety_admissible);
              ("stalled", Json.Bool r.Runner.stalled);
              ("rounds", Json.Int r.Runner.rounds);
              ("honest_msgs", Json.Int r.Runner.honest_msgs);
              ("byz_msgs", Json.Int r.Runner.byz_msgs);
              ( "decision_rounds",
                Json.List (List.map Json.of_int_option r.Runner.decision_rounds)
              );
            ] );
        ("trace", Vv_sim.Trace.to_json r.Runner.trace);
      ]
  in
  let run protocol strategy bb t f inputs delay_hi seed trace format =
    if trace then begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.Src.set_level Vv_sim.Engine.log_src (Some Logs.Debug)
    end;
    let f = Option.value f ~default:t in
    let delay =
      if delay_hi <= 1 then Vv_sim.Delay.Synchronous
      else Vv_sim.Delay.Uniform { lo = 1; hi = delay_hi }
    in
    let r = Runner.simple ~protocol ~strategy ~bb ~delay ~seed ~t ~f inputs in
    match format with
    | Emit.Json ->
        print_endline
          (Json.to_string (run_json protocol strategy ~t ~f ~seed r))
    | Emit.Csv -> print_string (Vv_sim.Trace.to_csv r.Runner.trace)
    | Emit.Table ->
        let honest = r.Runner.honest_inputs in
        Fmt.pr "protocol     : %s@." (Runner.protocol_label protocol);
        Fmt.pr "adversary    : %a  (f=%d, t=%d)@." Strategy.pp strategy f t;
        Fmt.pr "honest inputs: %a@." Fmt.(list ~sep:sp Oid.pp) honest;
        (match Bounds.decompose ~tie:Vv_ballot.Tie_break.default honest with
        | Some (w, ag, bg, cg) ->
            Fmt.pr "honest tally : plurality=%a A_G=%d B_G=%d C_G=%d@." Oid.pp w
              ag bg cg;
            let n = List.length honest + f in
            Fmt.pr "bounds       : BFT=%b CFT=%b SCT=%b (N=%d)@."
              (Bounds.satisfied Bounds.Bft ~n ~t ~bg ~cg)
              (Bounds.satisfied Bounds.Cft ~n ~t ~bg ~cg)
              (Bounds.satisfied Bounds.Sct ~n ~t ~bg ~cg)
              n
        | None -> ());
        Fmt.pr "outputs      : %a@."
          Fmt.(list ~sep:sp (option ~none:(any "-") Oid.pp))
          r.Runner.outputs;
        Fmt.pr "termination  : %b@." r.Runner.termination;
        Fmt.pr "agreement    : %b@." r.Runner.agreement;
        Fmt.pr "voting valid : %b (tie-break-aware: %b)@."
          r.Runner.voting_validity r.Runner.voting_validity_tb;
        Fmt.pr "strong valid : %b@." r.Runner.strong_validity;
        Fmt.pr "safety adm.  : %b@." r.Runner.safety_admissible;
        Fmt.pr "rounds       : %d (stalled: %b)@." r.Runner.rounds
          r.Runner.stalled;
        Fmt.pr "messages     : honest=%d byzantine=%d@." r.Runner.honest_msgs
          r.Runner.byz_msgs
  in
  C.Cmd.v (C.Cmd.info "run" ~doc)
    C.Term.(
      const run $ protocol $ strategy $ bb $ t $ f $ inputs $ delay_hi $ seed
      $ trace $ format_term)

(* --- ledger --- *)

let ledger_cmd =
  let doc = "Run a multi-shot voting ledger over random slot electorates." in
  let n = C.Arg.(value & opt int 9 & info [ "n" ] ~doc:"Total nodes.") in
  let t = C.Arg.(value & opt int 2 & info [ "t" ] ~doc:"Tolerance (the last t nodes are Byzantine).") in
  let slots = C.Arg.(value & opt int 6 & info [ "slots" ] ~doc:"Number of subjects to decide.") in
  let seed = C.Arg.(value & opt int 0x1ed9 & info [ "seed" ] ~doc:"PRNG seed.") in
  let run format n t slots seed =
    let byzantine = List.init t (fun i -> n - 1 - i) in
    let cfg =
      Vv_multishot.Ledger.config ~byzantine
        ~retry:(Vv_multishot.Ledger.Rotate_and_adjust (Vv_core.Session.Bandwagon, 6))
        ~seed ~n ~t ()
    in
    let ledger = Vv_multishot.Ledger.create cfg in
    let rng = Vv_prelude.Rng.create (seed + 1) in
    let dist =
      Vv_dist.Multinomial.create ~n:(n - t) ~p:[| 0.5; 0.3; 0.2 |]
    in
    for subject = 1 to slots do
      let honest = Vv_dist.Montecarlo.sample_inputs dist rng in
      let inputs = honest @ List.init t (fun _ -> Oid.of_int 0) in
      let slot = Vv_multishot.Ledger.decide ledger ~subject inputs in
      if format = Emit.Table then Fmt.pr "%a@." Vv_multishot.Ledger.pp_slot slot
    done;
    let tab =
      Table.create ~title:(Fmt.str "ledger n=%d t=%d seed=%#x" n t seed)
        ~headers:
          [ "slot"; "subject"; "decision"; "speaker"; "attempts"; "valid";
            "rounds" ]
        ~aligns:
          [ Table.Right; Table.Right; Table.Left; Table.Right; Table.Right;
            Table.Right; Table.Right ]
        ()
    in
    List.iter
      (fun (s : Vv_multishot.Ledger.slot) ->
        Table.add_row tab
          [
            Table.icell s.Vv_multishot.Ledger.index;
            Table.icell s.Vv_multishot.Ledger.subject;
            (match s.Vv_multishot.Ledger.decision with
            | Some o -> Oid.to_string o
            | None -> "-");
            Table.icell s.Vv_multishot.Ledger.speaker;
            Table.icell s.Vv_multishot.Ledger.attempts;
            Table.bcell s.Vv_multishot.Ledger.valid;
            Table.icell s.Vv_multishot.Ledger.rounds_total;
          ])
      (Vv_multishot.Ledger.slots ledger);
    (match format with
    | Emit.Table -> ()
    | Emit.Csv -> print_string (Table.to_csv tab)
    | Emit.Json ->
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("slots", Table.to_json tab);
                  ("height", Json.Int (Vv_multishot.Ledger.height ledger));
                  ( "committed",
                    Json.Int
                      (List.length (Vv_multishot.Ledger.committed ledger)) );
                  ( "all_committed_valid",
                    Json.Bool (Vv_multishot.Ledger.all_committed_valid ledger)
                  );
                ])));
    if format = Emit.Table then
      Fmt.pr "@.height=%d committed=%d all-committed-valid=%b@."
        (Vv_multishot.Ledger.height ledger)
        (List.length (Vv_multishot.Ledger.committed ledger))
        (Vv_multishot.Ledger.all_committed_valid ledger)
  in
  C.Cmd.v (C.Cmd.info "ledger" ~doc)
    C.Term.(const run $ format_term $ n $ t $ slots $ seed)

(* --- radio --- *)

let topology_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "complete"; n ] -> Ok (Vv_radio.Topology.complete (int_of_string n))
    | [ "ring"; n ] -> Ok (Vv_radio.Topology.ring ~k:1 (int_of_string n))
    | [ "ring2"; n ] -> Ok (Vv_radio.Topology.ring ~k:2 (int_of_string n))
    | [ "grid"; w; h ] ->
        Ok (Vv_radio.Topology.grid ~w:(int_of_string w) ~h:(int_of_string h))
    | [ "geo"; n; r ] ->
        Ok
          (Vv_radio.Topology.random_geometric ~n:(int_of_string n)
             ~radius:(float_of_string r) ~seed:7)
    | _ ->
        Error
          (`Msg
             "topology: complete:N | ring:N | ring2:N | grid:W:H | geo:N:R")
  in
  C.Arg.conv (parse, fun ppf t -> Fmt.pf ppf "<topology of %d>" (Vv_radio.Topology.size t))

let radio_cmd =
  let doc = "One multi-hop radio vote on a chosen topology." in
  let topo =
    C.Arg.(value & opt topology_conv (Vv_radio.Topology.ring ~k:2 9)
           & info [ "topology" ] ~doc:"complete:N | ring:N | ring2:N | grid:W:H | geo:N:R.")
  in
  let t = C.Arg.(value & opt int 1 & info [ "t" ] ~doc:"Tolerance; the last t nodes are Byzantine.") in
  let run format topo t =
    let n = Vv_radio.Topology.size topo in
    let byzantine = List.init t (fun i -> n - 1 - i) in
    let inputs =
      List.init n (fun i -> Oid.of_int (if i mod 4 = 3 then 1 else 0))
    in
    let r =
      Vv_radio.Radio_runner.run ~topology:topo ~t ~byzantine inputs
    in
    match format with
    | Emit.Json ->
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("n", Json.Int n);
                  ("diameter", Json.Int (Vv_radio.Topology.diameter topo));
                  ("t", Json.Int t);
                  ( "outputs",
                    Json.List
                      (List.map
                         (fun o -> Json.of_int_option (Option.map Oid.to_int o))
                         r.Vv_radio.Radio_runner.outputs) );
                  ("termination", Json.Bool r.Vv_radio.Radio_runner.termination);
                  ("agreement", Json.Bool r.Vv_radio.Radio_runner.agreement);
                  ( "voting_validity",
                    Json.Bool r.Vv_radio.Radio_runner.voting_validity );
                  ("rounds", Json.Int r.Vv_radio.Radio_runner.rounds);
                  ("messages", Json.Int r.Vv_radio.Radio_runner.messages);
                  ("trace", Vv_sim.Trace.to_json r.Vv_radio.Radio_runner.trace);
                ]))
    | Emit.Csv ->
        print_string (Vv_sim.Trace.to_csv r.Vv_radio.Radio_runner.trace)
    | Emit.Table ->
        Fmt.pr "topology     : %d nodes, diameter %d, min degree %d@." n
          (Vv_radio.Topology.diameter topo)
          (Vv_radio.Topology.min_degree topo);
        Fmt.pr "outputs      : %a@."
          Fmt.(list ~sep:sp (option ~none:(any "-") Oid.pp))
          r.Vv_radio.Radio_runner.outputs;
        Fmt.pr "termination=%b agreement=%b validity=%b rounds=%d messages=%d@."
          r.Vv_radio.Radio_runner.termination r.Vv_radio.Radio_runner.agreement
          r.Vv_radio.Radio_runner.voting_validity r.Vv_radio.Radio_runner.rounds
          r.Vv_radio.Radio_runner.messages
  in
  C.Cmd.v (C.Cmd.info "radio" ~doc) C.Term.(const run $ format_term $ topo $ t)

(* --- check --- *)

let validity_list_conv =
  let module Property = Vv_ballot.Property in
  let parse s =
    let names =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (fun x -> x <> "")
    in
    let names = if List.mem "all" names then Property.names else names in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest -> (
          match Property.of_name n with
          | Some p -> resolve (p :: acc) rest
          | None ->
              Error
                (`Msg
                   (Fmt.str "unknown validity %S (one of: %s, or all)" n
                      (String.concat ", " Property.names))))
    in
    resolve [] names
  in
  C.Arg.conv
    (parse, fun ppf ps -> Fmt.(list ~sep:comma Vv_ballot.Property.pp) ppf ps)

let check_cmd =
  let doc =
    "Exhaustively model-check the small-model space: every variant, \
     substrate and communication model against the enumerated adversary \
     universe, with the paper's bounds as the oracle. Exits nonzero on \
     any violation of a promised guarantee, or when some bound kind has \
     no below-bound tightness witness. --validity sweeps other validity \
     properties (one engine run per execution, classified against each)."
  in
  let validity =
    C.Arg.(
      value
      & opt validity_list_conv [ Vv_ballot.Property.voting ]
      & info [ "validity" ] ~docv:"P1,P2,..."
          ~doc:
            (Fmt.str
               "Comma-separated validity properties to sweep (%s, or \
                $(b,all)). Default: voting, the paper's property."
               (String.concat ", " Vv_ballot.Property.names)))
  in
  let run opts properties =
    Cli.handle opts (Vv_check.Report.campaign ~properties ())
  in
  C.Cmd.v (C.Cmd.info "check" ~doc)
    C.Term.(
      const run $ Cli.opts_term ~default_profile:Campaign.Smoke $ validity)

(* --- chaos --- *)

let chaos_cmd =
  let doc =
    "Resilience campaign on the chaos network substrate: sweep omission \
     rate and transient-partition scenarios across every protocol variant \
     and classify each grid cell Exact / Stall / Violation (experiment \
     E17). Exits nonzero when the safety-guaranteed variant shows any \
     Violation."
  in
  let retransmit =
    C.Arg.(
      value & flag
      & info [ "retransmit" ]
          ~doc:"Enable the capped-exponential-backoff retransmission \
                policy for every run.")
  in
  let trials =
    C.Arg.(
      value
      & opt (some int) None
      & info [ "trials" ] ~docv:"K"
          ~doc:"Override the profile's per-cell trial count.")
  in
  let run opts retransmit trials =
    Cli.handle opts (Vv_analysis.Exp_chaos.campaign ~retransmit ?trials ())
  in
  C.Cmd.v (C.Cmd.info "chaos" ~doc)
    C.Term.(
      const run
      $ Cli.opts_term ~default_profile:Campaign.Smoke
      $ retransmit $ trials)

(* --- gst --- *)

let gst_cmd =
  let doc =
    "Network-agnostic validity campaign across synchrony models: sweep \
     (t_s, t_a) tolerance pairs and GST placement over synchronous, \
     eventually-synchronous and asynchronous schedulers, and map the \
     achievable region against N > max{3t, 2t + 2*B_G + C_G} (experiment \
     E20). Exits nonzero when a predicted-achievable cell shows any \
     violation or stall."
  in
  let trials =
    C.Arg.(
      value
      & opt (some int) None
      & info [ "trials" ] ~docv:"K"
          ~doc:"Override the profile's per-cell trial count.")
  in
  let run opts trials =
    Cli.handle opts (Vv_analysis.Exp_gst.campaign ?trials ())
  in
  C.Cmd.v (C.Cmd.info "gst" ~doc)
    C.Term.(
      const run $ Cli.opts_term ~default_profile:Campaign.Smoke $ trials)

(* --- validity --- *)

let validity_cmd =
  let doc =
    "Validity-hierarchy campaign (experiment E21): run every \
     implementation (voting-validity protocol variants plus the \
     strong/median/interval baselines) on wide / tie / over-fault \
     electorates and judge each outcome against every first-class \
     validity property. Exits nonzero when any predicted-solvable \
     (impl, config, validity) cell shows a violation or stall — the \
     executable form of the arXiv 2301.04920 solvability hierarchy."
  in
  let trials =
    C.Arg.(
      value
      & opt (some int) None
      & info [ "trials" ] ~docv:"K"
          ~doc:"Override the profile's per-cell trial count.")
  in
  let run opts trials =
    Cli.handle opts (Vv_analysis.Exp_validity.campaign ?trials ())
  in
  C.Cmd.v (C.Cmd.info "validity" ~doc)
    C.Term.(
      const run $ Cli.opts_term ~default_profile:Campaign.Smoke $ trials)

(* --- serve / load --- *)

(* Listener flags shared by serve and load: exactly one of --socket PATH
   (Unix domain) or --port N (TCP on --host, default 127.0.0.1). *)
let socket_arg cmd =
  C.Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:(Fmt.str "Unix-domain socket path for %s." cmd))

let port_arg cmd =
  C.Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"N" ~doc:(Fmt.str "TCP port for %s." cmd))

let host_arg =
  C.Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~doc:"TCP host to bind or connect to.")

let serve_cmd =
  let doc =
    "Run the multi-shot ledger as a line-delimited JSON-RPC daemon: \
     clients submit subjects, filled slots are decided (sharded across \
     --jobs domains) and their decisions streamed back to every \
     connected client. See README for the message shapes."
  in
  let n = C.Arg.(value & opt int 9 & info [ "n" ] ~doc:"Total nodes.") in
  let t =
    C.Arg.(value & opt int 2
           & info [ "t" ] ~doc:"Tolerance (the last t nodes are Byzantine).")
  in
  let protocol =
    C.Arg.(value & opt protocol_conv Runner.Algo2_sct
           & info [ "protocol"; "p" ] ~doc:"Protocol: algo1|algo2|algo3|algo4|cft.")
  in
  let batch =
    C.Arg.(value & opt int 4
           & info [ "batch" ] ~doc:"Subjects per slot (the sharding unit).")
  in
  let jobs =
    C.Arg.(value & opt int 1
           & info [ "jobs"; "j" ]
               ~doc:"Worker domains for slot fan-out; 0 = all cores but one.")
  in
  let seed = C.Arg.(value & opt int 0x5e12e & info [ "seed" ] ~doc:"Ledger seed.") in
  let snapshot =
    C.Arg.(value
           & opt (some string) None
           & info [ "snapshot" ] ~docv:"PATH"
               ~doc:"Persist the committed log here (written atomically \
                     after every commit); an existing snapshot is loaded \
                     at startup so a restart resumes where it left off.")
  in
  let quiet =
    C.Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress stderr logging.")
  in
  let follow =
    C.Arg.(value
           & opt (some string) None
           & info [ "follow" ] ~docv:"ADDR"
               ~doc:"Run as a read-only follower of the primary daemon at \
                     \\$(docv) (a Unix socket path, or HOST:PORT): resync \
                     its committed log via catchup, apply its decision \
                     stream, and reconnect with retry when it dies. \
                     $(b,submit) is refused on a follower.")
  in
  let max_outq =
    C.Arg.(value
           & opt int Vv_serve.Server.default_max_outq
           & info [ "max-outq" ] ~docv:"BYTES"
               ~doc:"Per-client outbound queue bound; a client that stays \
                     this far behind the decision stream is disconnected.")
  in
  let parse_follow addr =
    match String.rindex_opt addr ':' with
    | Some i
      when i > 0 && i < String.length addr - 1
           && String.for_all
                (fun c -> c >= '0' && c <= '9')
                (String.sub addr (i + 1) (String.length addr - i - 1)) -> (
        let host = String.sub addr 0 i in
        let port = int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)) in
        try Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
        with Failure _ ->
          Fmt.epr "vvc serve: --follow %s: bad host address@." addr;
          exit 1)
    | _ -> Unix.ADDR_UNIX addr
  in
  let run socket port host n t protocol batch jobs seed snapshot quiet follow
      max_outq =
    let listen =
      match (socket, port) with
      | Some path, None -> (
          try Vv_serve.Server.listen_unix path
          with Failure msg ->
            Fmt.epr "vvc serve: %s@." msg;
            exit 1)
      | None, Some p ->
          let fd = Vv_serve.Server.listen_tcp ~host p in
          Fmt.epr "[listening on %s:%d]@." host (Vv_serve.Server.bound_port fd);
          fd
      | _ ->
          Fmt.epr "vvc serve: need exactly one of --socket or --port@.";
          exit 1
    in
    let byzantine = List.init t (fun i -> n - 1 - i) in
    let cfg =
      Vv_multishot.Ledger.config ~byzantine ~protocol
        ~retry:(Vv_multishot.Ledger.Rotate_and_adjust (Vv_core.Session.Bandwagon, 6))
        ~seed ~n ~t ()
    in
    let cleanup () =
      Unix.close listen;
      match socket with
      | Some path when Sys.file_exists path -> Sys.remove path
      | _ -> ()
    in
    match follow with
    | Some addr ->
        let log = if quiet then None else Some (Fmt.epr "[follow] %s@.") in
        let outcome =
          Vv_serve.Replica.run ~batch ~jobs ?snapshot ?log ~max_outq
            ~primary:(parse_follow addr) ~listen cfg
        in
        cleanup ();
        Fmt.pr "served %d clients, final height %d, %d catchups@."
          outcome.Vv_serve.Replica.served_clients
          outcome.Vv_serve.Replica.height outcome.Vv_serve.Replica.catchups
    | None ->
        let log = if quiet then None else Some (Fmt.epr "[serve] %s@.") in
        let outcome =
          Vv_serve.Server.serve ~batch ~jobs ?snapshot ?log ~max_outq ~listen
            cfg
        in
        cleanup ();
        Fmt.pr "served %d clients, final height %d, %d slow disconnects@."
          outcome.Vv_serve.Server.served_clients outcome.Vv_serve.Server.height
          outcome.Vv_serve.Server.slow_disconnects
  in
  C.Cmd.v (C.Cmd.info "serve" ~doc)
    C.Term.(
      const run $ socket_arg "the daemon" $ port_arg "the daemon" $ host_arg
      $ n $ t $ protocol $ batch $ jobs $ seed $ snapshot $ quiet $ follow
      $ max_outq)

let load_cmd =
  let doc =
    "Drive a running serve daemon: submit a deterministic burst of \
     random-electorate subjects round-robin across a client pool, wait \
     for every decision to stream back, and report sustained \
     decisions/s. Exits nonzero when any submission errors, a decision \
     is missing, or a committed decision lacks voting validity."
  in
  let clients =
    C.Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Connection pool size.")
  in
  let subjects =
    C.Arg.(value & opt int 96 & info [ "subjects" ] ~doc:"Subjects to submit.")
  in
  let seed =
    C.Arg.(value & opt int 0x10ad & info [ "seed" ] ~doc:"Electorate seed.")
  in
  let shutdown =
    C.Arg.(value & flag
           & info [ "shutdown" ] ~doc:"Ask the daemon to stop afterwards.")
  in
  let retry_for =
    C.Arg.(value & opt float 10.
           & info [ "retry-for" ] ~docv:"SECONDS"
               ~doc:"Keep retrying the initial connection this long (lets \
                     the client race a daemon that is still starting).")
  in
  let racy =
    C.Arg.(value & flag
           & info [ "racy" ]
               ~doc:"Fire every submission without awaiting acks, so \
                     position assignment races across connections. The \
                     committed log is then scheduling-dependent; the check \
                     becomes set-equality of decided subjects instead of \
                     per-position determinism.")
  in
  let run format socket port host clients subjects seed shutdown retry_for racy
      =
    let connect () =
      match (socket, port) with
      | Some path, None -> Vv_serve.Client.connect_unix ~retry_for path
      | None, Some p -> Vv_serve.Client.connect_tcp ~retry_for ~host p
      | _ ->
          Fmt.epr "vvc load: need exactly one of --socket or --port@.";
          exit 1
    in
    let conns = List.init (max 1 clients) (fun _ -> connect ()) in
    (* The input arity comes from the daemon, not a local guess. *)
    let n_nodes, tol =
      match List.hd conns |> Vv_serve.Client.status with
      | Ok (Json.Obj fields) -> (
          match (List.assoc_opt "n" fields, List.assoc_opt "t" fields) with
          | Some (Json.Int n), Some (Json.Int t) -> (n, t)
          | _ ->
              Fmt.epr "vvc load: daemon status carries no n/t@.";
              exit 1)
      | Ok _ | Error _ ->
          Fmt.epr "vvc load: cannot query daemon status@.";
          exit 1
    in
    let rng = Vv_prelude.Rng.create (Vv_prelude.Rng.derive seed 1) in
    let dist =
      Vv_dist.Multinomial.create ~n:(n_nodes - tol) ~p:[| 0.5; 0.3; 0.2 |]
    in
    let reqs =
      List.init subjects (fun subject ->
          let honest = Vv_dist.Montecarlo.sample_inputs dist rng in
          (subject, honest @ List.init tol (fun _ -> Oid.of_int 0)))
    in
    let driver =
      if racy then Vv_serve.Client.run_load_racy else Vv_serve.Client.run_load
    in
    let report =
      match driver ~shutdown ~conns reqs with
      | Ok r -> r
      | Error msg ->
          Fmt.epr "vvc load: %s@." msg;
          exit 1
    in
    List.iter Vv_serve.Client.close conns;
    let all_valid =
      List.for_all
        (fun (s : Vv_multishot.Ledger.slot) ->
          s.Vv_multishot.Ledger.decision = None || s.Vv_multishot.Ledger.valid)
        report.Vv_serve.Client.decisions
    in
    (* In racy mode positions are scheduling-dependent, so the invariant
       is set-equality of decided subjects against what was submitted. *)
    let subjects_match =
      (not racy)
      || Vv_serve.Client.subjects_decided report
         = List.sort compare (List.map fst reqs)
    in
    (match format with
    | Emit.Json ->
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("racy", Json.Bool racy);
                  ("submitted", Json.Int report.Vv_serve.Client.submitted);
                  ( "decided",
                    Json.Int (List.length report.Vv_serve.Client.decisions) );
                  ("elapsed_s", Json.Float report.Vv_serve.Client.elapsed);
                  ("decisions_per_s", Json.Float report.Vv_serve.Client.rate);
                  ("all_committed_valid", Json.Bool all_valid);
                  ("subjects_match", Json.Bool subjects_match);
                  ( "errors",
                    Json.List
                      (List.map
                         (fun e -> Json.String e)
                         report.Vv_serve.Client.errors) );
                ]))
    | _ ->
        Fmt.pr "submitted=%d decided=%d elapsed=%.2fs rate=%.0f/s \
                all-committed-valid=%b subjects-match=%b@."
          report.Vv_serve.Client.submitted
          (List.length report.Vv_serve.Client.decisions)
          report.Vv_serve.Client.elapsed report.Vv_serve.Client.rate all_valid
          subjects_match);
    if
      report.Vv_serve.Client.errors <> []
      || List.length report.Vv_serve.Client.decisions
         <> report.Vv_serve.Client.submitted
      || (not all_valid) || not subjects_match
    then exit 1
  in
  C.Cmd.v (C.Cmd.info "load" ~doc)
    C.Term.(
      const run $ format_term $ socket_arg "the daemon" $ port_arg "the daemon"
      $ host_arg $ clients $ subjects $ seed $ shutdown $ retry_for $ racy)

let () =
  let doc = "Exact fault-tolerant consensus with voting validity (IPDPS 2023)" in
  let info = C.Cmd.info "vvc" ~version:"1.0.0" ~doc in
  exit
    (C.Cmd.eval
       (C.Cmd.group info
          [ list_cmd; exp_cmd; all_cmd; bounds_cmd; run_cmd; check_cmd;
            chaos_cmd; gst_cmd; validity_cmd; ledger_cmd; radio_cmd;
            serve_cmd; load_cmd ]))
