(* Shared Cmdliner vocabulary for the campaign-running subcommands
   (exp/all/chaos/check): one --format/--profile/--jobs/--seed/--progress
   /--out bundle parsed into a single [opts] record, plus the helpers
   that run a campaign under those options and emit the result.

   Keeping the bundle here guarantees every subcommand accepts the same
   flags with the same semantics, and that output through [--out] is
   byte-identical to stdout (both render through the [Emit] string
   layer). *)

module C = Cmdliner
module Emit = Vv_exec.Emit
module Campaign = Vv_exec.Campaign
module Executor = Vv_exec.Executor

type opts = {
  format : Emit.format;
  profile : Campaign.profile;
  jobs : int;
  seed : int option;  (** [None] = the campaign's default seed *)
  progress : bool;
  out : string option;  (** write the report here instead of stdout *)
}

let format_term =
  let fmt_conv =
    C.Arg.enum (List.map (fun f -> (Emit.to_string f, f)) Emit.all)
  in
  C.Arg.(
    value
    & opt fmt_conv Emit.Table
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,table) (human-readable, default), $(b,csv) \
           or $(b,json).")

let profile_term ~default =
  let profile_conv =
    C.Arg.enum
      (List.map
         (fun p -> (Campaign.profile_label p, p))
         Campaign.all_profiles)
  in
  C.Arg.(
    value
    & opt profile_conv default
    & info [ "profile" ] ~docv:"P"
        ~doc:
          (Fmt.str
             "Campaign tier: $(b,smoke) (CI-sized grids) or $(b,full) \
              (paper-sized). Default $(b,%s)."
             (Campaign.profile_label default)))

let jobs_term =
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok n
      | Some _ -> Error (`Msg "--jobs must be non-negative")
      | None -> Error (`Msg "--jobs must be an integer")
    in
    C.Arg.conv (parse, Fmt.int)
  in
  C.Arg.(
    value
    & opt jobs_conv 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the campaign's cell fan-out (default 1; \
           $(b,0) = all available cores but one). Output is identical \
           for every value.")

let seed_term =
  C.Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"S"
        ~doc:
          "Campaign base seed; omit to use the campaign's default (which \
           reproduces the published tables).")

let progress_term =
  C.Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Report done/total cells, throughput and ETA on stderr.")

let out_term =
  C.Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:
          "Write the report to FILE instead of stdout (byte-identical \
           content).")

let opts_term ~default_profile =
  let make format profile jobs seed progress out =
    { format; profile; jobs; seed; progress; out }
  in
  C.Term.(
    const make $ format_term
    $ profile_term ~default:default_profile
    $ jobs_term $ seed_term $ progress_term $ out_term)

(* --- progress reporting --- *)

(* Carriage-return ticker on stderr: done/total, cells/s and ETA from
   wall-clock since the first tick; final tick ends the line. *)
let progress_reporter ~label () =
  let start = Unix.gettimeofday () in
  fun (p : Executor.progress) ->
    let elapsed = Unix.gettimeofday () -. start in
    let rate =
      if elapsed > 0. then float_of_int p.Executor.done_ /. elapsed else 0.
    in
    let eta =
      if rate > 0. then
        Fmt.str "%.0fs" (float_of_int (p.Executor.total - p.Executor.done_) /. rate)
      else "-"
    in
    Printf.eprintf "\r%s: %d/%d cells (%.1f cells/s, ETA %s)%!" label
      p.Executor.done_ p.Executor.total rate eta;
    if p.Executor.done_ >= p.Executor.total then Printf.eprintf "\n%!"

(* --- running and emitting --- *)

let run_campaign opts c =
  let on_progress =
    if opts.progress then Some (progress_reporter ~label:(Campaign.id c) ())
    else None
  in
  Campaign.run ~profile:opts.profile ~jobs:opts.jobs ?seed:opts.seed
    ?on_progress c

let emitted_string fmt (e : Campaign.emitted) =
  let body = Emit.tables_string fmt e.Campaign.tables in
  match (fmt, e.Campaign.verdict) with
  | (Emit.Table | Emit.Csv), Some v -> body ^ v ^ "\n"
  | _ -> body

let output opts s =
  match opts.out with
  | None -> print_string s
  | Some path -> (
      (* Atomic: a failed or interrupted write must never leave a
         truncated file where the previous output was. *)
      match Vv_prelude.Io.write_atomic ~path s with
      | Ok () -> Fmt.epr "[written %s]@." path
      | Error msg ->
          Fmt.epr "vvc: cannot write %s: %s@." path msg;
          exit 1)

(* Run one campaign end-to-end under [opts]; exits 1 when the campaign
   reports not-ok (chaos safety violation, checker FAIL). *)
let handle opts c =
  let outcome = run_campaign opts c in
  let e = outcome.Campaign.emitted in
  output opts (emitted_string opts.format e);
  if not e.Campaign.ok then exit 1
