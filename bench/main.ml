(* Benchmark / reproduction harness.

   Running `dune exec bench/main.exe` does two things:

   1. regenerates every figure/experiment of the paper as printed series
      (the Figure 1 panels and experiments E4-E10; DESIGN.md §4 is the
      index, EXPERIMENTS.md the paper-vs-measured record);
   2. runs one Bechamel wall-clock micro-benchmark per experiment family
      (a full consensus instance per protocol, each broadcast substrate,
      and the probability kernels behind Figure 1).

   Pass `--tables` or `--bench` to run only one half; `--quick` shrinks the
   statistical workloads for smoke runs (tables at the Smoke tier, smaller
   timing workloads, a shorter Bechamel quota); `--json=PATH` additionally
   writes the micro-benchmark results as a JSON array of
   {name, ns_per_run, runs} records. *)

module Runner = Vv_core.Runner
module Strategy = Vv_core.Strategy
module Oid = Vv_ballot.Option_id

let winning = Vv_analysis.Witness.inputs ~ag:9 ~bg:2 ~cg:1

let consensus_run protocol () =
  let r =
    Runner.simple ~protocol ~strategy:Strategy.Collude_second ~t:2 ~f:2 winning
  in
  assert r.Runner.termination

let bb_run choice () =
  let honest = Vv_analysis.Witness.inputs ~ag:6 ~bg:1 ~cg:0 in
  let r =
    Runner.simple ~protocol:Runner.Algo1 ~bb:choice
      ~strategy:Strategy.Collude_second ~t:1 ~f:1 honest
  in
  assert r.Runner.termination

let fig1b_exact_cell () =
  let dist = Vv_dist.Profiles.(distribution d2) in
  ignore (Vv_dist.Exact.pr_voting_validity dist ~t:2)

let fig1b_cached_cell () =
  let dist = Vv_dist.Profiles.(distribution d2) in
  ignore (Vv_dist.Cache.pr_voting_validity dist ~t:2)

(* Before/after timing for the enumeration memoisation: the Figure 1(b)
   exact column evaluated over every profile and tolerance, once through
   Exact (re-enumerates the multinomial support at each of the t_max+1
   points) and once through Cache (one enumeration per profile, suffix-sum
   lookups afterwards).  A larger electorate than the paper's ng=10 makes
   the enumeration cost visible above timer noise. *)
let memo_timing ?(ng = 28) ?(t_max = 4) ?(reps = 5) () =
  let sweep pr_vv =
    List.iter
      (fun pr ->
        let dist = Vv_dist.Profiles.distribution ~ng pr in
        for t = 0 to t_max do
          ignore (pr_vv dist ~t)
        done)
      Vv_dist.Profiles.all
  in
  let time f =
    let t0 = Sys.time () in
    for _ = 1 to reps do f () done;
    (Sys.time () -. t0) /. float_of_int reps
  in
  let before = time (fun () -> sweep Vv_dist.Exact.pr_voting_validity) in
  let after =
    time (fun () ->
        Vv_dist.Cache.clear ();
        sweep Vv_dist.Cache.pr_voting_validity)
  in
  Fmt.pr "@.== Fig 1(b) exact sweep, enumeration memoisation (ng=%d, t=0..%d, \
          %d profiles) ==@."
    ng t_max
    (List.length Vv_dist.Profiles.all);
  Fmt.pr "before (Exact, re-enumerates per point) : %8.4f s@." before;
  Fmt.pr "after  (Cache, one enumeration/profile) : %8.4f s@." after;
  Fmt.pr "speedup                                  : %8.2fx@."
    (if after > 0.0 then before /. after else Float.infinity)

(* Single-domain vs multi-domain wall-clock for the executor's domain
   pool: the Figure 1(b) empirical sweep (protocol runs through
   run_generator) and a large single-spec Monte-Carlo batch through
   run_trials.  Summaries are byte-identical at every jobs value (asserted
   here, pinned properly in test_exec.ml); only the wall-clock should
   move.  On a single-core host the pool degrades to roughly the
   sequential time plus spawn overhead. *)
let par_timing ?(jobs = 4) ?(trials = 10_000) () =
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let spec =
    Runner.simple_spec ~protocol:Runner.Algo1
      ~strategy:Strategy.Collude_second ~t:2 ~f:2 winning
  in
  let batch jobs () =
    Vv_exec.Summary.to_json
      (Vv_exec.Executor.run_trials ~jobs ~trials ~seed:0xbead spec)
  in
  let sweep jobs () =
    Vv_prelude.Table.to_csv
      (Vv_analysis.Exp_fig1.fig1b ~jobs ~trials:600 ())
  in
  let report what (r1, t1) (rj, tj) =
    assert (r1 = rj);
    Fmt.pr "%-42s jobs=1 %8.3f s   jobs=%d %8.3f s   speedup %5.2fx@." what
      t1 jobs tj
      (if tj > 0.0 then t1 /. tj else Float.infinity);
  in
  Fmt.pr "@.== Domain pool wall-clock (available cores: %d) ==@."
    (Domain.recommended_domain_count ());
  report (Fmt.str "run_trials %d x algo1-n14" trials) (wall (batch 1))
    (wall (batch jobs));
  report "fig1b empirical sweep (600 trials/cell)" (wall (sweep 1))
    (wall (sweep jobs))

(* Chaos-campaign throughput through the domain pool: the E17 smoke grid
   (several hundred protocol runs under omission/partition injection) at
   jobs=1 vs jobs=0 (all cores but one).  The rendered report must be
   byte-identical at both values — asserted here, pinned properly in
   test_chaos.ml. *)
let chaos_timing ?(trials = 6) () =
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let module Chaos = Vv_analysis.Exp_chaos in
  let campaign jobs () =
    let r = Chaos.run ~jobs ~trials Chaos.Smoke in
    ( String.concat "\n" (List.map Vv_prelude.Table.to_csv (Chaos.tables r)),
      r.Chaos.runs )
  in
  let (r1, n1), t1 = wall (campaign 1) in
  let (r0, n0), t0 = wall (campaign 0) in
  assert (r1 = r0 && n1 = n0);
  let rate t = if t > 0.0 then float_of_int n1 /. t else Float.infinity in
  Fmt.pr "@.== Chaos campaign throughput (E17 smoke grid, %d runs) ==@." n1;
  Fmt.pr "jobs=1          : %8.3f s  (%8.1f runs/s)@." t1 (rate t1);
  Fmt.pr "jobs=0 (%d cores): %8.3f s  (%8.1f runs/s)@."
    (Domain.recommended_domain_count ())
    t0 (rate t0);
  Fmt.pr "speedup         : %8.2fx@."
    (if t0 > 0.0 then t1 /. t0 else Float.infinity)

let fig1b_mc_cell =
  let rng = Vv_prelude.Rng.create 17 in
  fun () ->
    let dist = Vv_dist.Profiles.(distribution d2) in
    ignore (Vv_dist.Montecarlo.pr_voting_validity dist ~t:2 ~samples:2_000 ~rng)

let median_baseline () =
  let cfg = Vv_sim.Config.with_byzantine ~n:11 ~t_max:2 [ 9; 10 ] () in
  let s =
    Vv_analysis.Baseline_runner.run_median cfg
      ~inputs:(fun id -> 100 + id)
      ~collude:true
  in
  assert (not s.Vv_analysis.Baseline_runner.stalled)

let radio_ring () =
  let topo = Vv_radio.Topology.ring ~k:2 12 in
  let inputs =
    List.init 12 (fun i -> Oid.of_int (if i mod 5 = 4 then 1 else 0))
  in
  let r =
    Vv_radio.Radio_runner.run ~topology:topo ~t:1 ~byzantine:[ 11 ] inputs
  in
  assert r.Vv_radio.Radio_runner.termination

let ledger_slot =
  let cfg =
    Vv_multishot.Ledger.config ~byzantine:[ 7; 8 ] ~n:9 ~t:2
      ~protocol:Runner.Algo1 ()
  in
  let inputs =
    List.init 7 (fun i -> Oid.of_int (if i = 6 then 1 else 0))
    @ [ Oid.of_int 0; Oid.of_int 0 ]
  in
  fun () ->
    let ledger = Vv_multishot.Ledger.create cfg in
    let slot = Vv_multishot.Ledger.decide ledger ~subject:1 inputs in
    assert (slot.Vv_multishot.Ledger.decision <> None)

let engine_batch_run =
  (* A filled batch of decisive electorates through the multi-shot
     engine: submit, step, merge — the serve daemon's commit path minus
     the sockets. *)
  let cfg =
    Vv_multishot.Ledger.config ~byzantine:[ 7; 8 ] ~n:9 ~t:2
      ~protocol:Runner.Algo1 ()
  in
  let reqs =
    List.init 8 (fun s ->
        ( s,
          List.init 7 (fun i -> Oid.of_int (if i = 6 then 1 else 0))
          @ [ Oid.of_int 0; Oid.of_int 0 ] ))
  in
  fun () ->
    let log, stats = Vv_multishot.Engine.run ~batch:4 ~jobs:1 cfg reqs in
    assert (List.length log = 8 && stats.Vv_multishot.Engine.all_valid)

let rpc_parse_micro =
  (* The daemon's framing layer for one submission: parse + ack render. *)
  let line =
    {|{"id":42,"method":"submit","params":{"subject":7,"inputs":[0,1,0,2,1,0,0,0,0]}}|}
  in
  fun () ->
    match Vv_serve.Rpc.parse line with
    | Ok (Vv_serve.Rpc.Submit _) ->
        ignore
          (Vv_serve.Rpc.submit_ack ~id:(Vv_prelude.Json.Int 42) ~position:11
             ~slot:2 ~lane:3)
    | _ -> assert false

let gst_scheduler_step =
  (* A full run of a chatty flood under the GST scheduler: pre-GST
     admissibility caps spread deliveries across scheduler buckets, then
     bounded delay from GST on — the per-round scheduling cost the E20
     campaign leans on. *)
  let module Chatty = struct
    type input = int
    type msg = int
    type output = int
    type state = { mutable seen : int }

    let name = "chatty-gst"
    let equal_msg = Int.equal

    let init (_ : Vv_sim.Protocol.ctx) v ~outbox =
      Vv_sim.Outbox.broadcast outbox v;
      { seen = 0 }

    let step (_ : Vv_sim.Protocol.ctx) st ~round:_ ~inbox ~outbox =
      let acc = ref st.seen in
      for i = 0 to Vv_sim.Inbox.length inbox - 1 do
        acc := !acc lxor Vv_sim.Inbox.msg inbox i lxor Vv_sim.Inbox.src inbox i
      done;
      st.seen <- !acc;
      Vv_sim.Outbox.broadcast outbox st.seen;
      st

    let output _ = None
    let phase _ = "chat"
    let inert _ = false
  end in
  let module E = Vv_sim.Engine.Make (Chatty) in
  let cfg =
    Vv_sim.Config.make ~n:6 ~t_max:1 ~max_rounds:64
      ~delay:
        (Vv_sim.Delay.Eventually_synchronous
           { gst = 8; bound = 2; schedule = None })
      ~seed:0x6057 ()
  in
  fun () ->
    let r = E.run_exn cfg ~inputs:(fun id -> id) () in
    assert r.E.stalled

let tally_micro =
  let inputs = List.init 1_000 (fun i -> Oid.of_int (i mod 5)) in
  fun () ->
    ignore
      (Vv_ballot.Tally.plurality ~tie:Vv_ballot.Tie_break.default
         (Vv_ballot.Tally.of_list inputs))

(* The parametric oracle: one pre-run checker execution classified
   against every first-class validity property — the per-property cost
   of `vvc check --validity=all` with the engine run factored out. *)
let oracle_classify_micro =
  let exec = (Vv_check.Space.executions Vv_check.Space.smoke).(0) in
  let outcome = Runner.run_checked (Vv_check.Space.spec_of exec) in
  fun () ->
    List.iter
      (fun p -> ignore (Vv_check.Oracle.classify ~property:p exec outcome))
      Vv_ballot.Property.all

(* Serialise the merged OLS table (ns/run per test) plus the raw sample
   counts as one JSON array, for tracking bench results across commits. *)
let write_bench_json path rows =
  let module Json = Vv_prelude.Json in
  let entry (name, ns_per_run, runs) =
    Json.Obj
      [
        ("name", Json.String name);
        ( "ns_per_run",
          match ns_per_run with Some v -> Json.Float v | None -> Json.Null );
        ("runs", Json.Int runs);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string (Json.List (List.map entry rows)) ^ "\n");
  close_out oc;
  Fmt.epr "[written %s]@." path

(* The benchmark suite in its declared order — the one source of truth for
   both the printed table and the JSON rows, so bench output (and the
   committed baseline it is diffed against) is stable across runs instead
   of depending on hash-table iteration or polymorphic sorting of rows
   that carry floats. *)
let declared_benches =
  [
    ("algo1-consensus-n14", consensus_run Runner.Algo1);
    ("algo2-sct-consensus-n14", consensus_run Runner.Algo2_sct);
    ("algo3-incremental-n14", consensus_run Runner.Algo3_incremental);
    ("algo4-local-n14", consensus_run Runner.Algo4_local);
    ("cft-n14", consensus_run Runner.Cft);
    ("bb-dolev-strong-n8", bb_run Vv_bb.Bb.Dolev_strong);
    ("bb-eig-n8", bb_run Vv_bb.Bb.Eig);
    ("bb-phase-king-n8", bb_run Vv_bb.Bb.Phase_king);
    ("fig1b-exact-cell", fig1b_exact_cell);
    ("fig1b-cached-cell", fig1b_cached_cell);
    ("fig1b-montecarlo-cell", fig1b_mc_cell);
    ("baseline-median-n11", median_baseline);
    ("radio-ring12-consensus", radio_ring);
    ("ledger-slot-n9", ledger_slot);
    ("ledger-engine-batch8-n9", engine_batch_run);
    ("serve-rpc-submit-parse", rpc_parse_micro);
    ("gst-scheduler-step", gst_scheduler_step);
    ("tally-plurality-1k", tally_micro);
    ("oracle-classify-parametric", oracle_classify_micro);
  ]

(* Position of a result row in the declared suite; result names may carry
   the "voting-validity/" group prefix. *)
let declared_rank name =
  let base =
    match String.rindex_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let rec go i = function
    | [] -> List.length declared_benches
    | (n, _) :: rest -> if n = base then i else go (i + 1) rest
  in
  go 0 declared_benches

let benches ?(quick = false) ?json_path () =
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"voting-validity"
      (List.map
         (fun (name, f) -> Test.make ~name (Staged.stage f))
         declared_benches)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    if quick then
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.1) ~stabilize:false ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Fmt.pr "@.== Bechamel micro-benchmarks (ns per run) ==@.";
  let json_rows = ref [] in
  Hashtbl.iter
    (fun measure per_test ->
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test []
        |> List.sort (fun (a, _) (b, _) ->
               match Int.compare (declared_rank a) (declared_rank b) with
               | 0 -> String.compare a b
               | c -> c)
      in
      List.iter
        (fun (name, ols) ->
          let ns_per_run =
            match Analyze.OLS.estimates ols with
            | Some (est :: _) -> Some est
            | Some [] | None -> None
          in
          let runs =
            match Hashtbl.find_opt raw name with
            | Some b -> b.Benchmark.stats.Benchmark.samples
            | None -> 0
          in
          json_rows := (name, ns_per_run, runs) :: !json_rows;
          (match ns_per_run with
          | Some est -> Fmt.pr "%-50s %12.1f %s@." name est measure
          | None -> Fmt.pr "%-50s %12s@." name "n/a"))
        rows)
    merged;
  match json_path with
  | None -> ()
  | Some path ->
      write_bench_json path
        (List.sort
           (fun (a, _, _) (b, _, _) ->
             match Int.compare (declared_rank a) (declared_rank b) with
             | 0 -> String.compare a b
             | c -> c)
           !json_rows)

let () =
  let args = Array.to_list Sys.argv in
  let tables_only = List.mem "--tables" args in
  let bench_only = List.mem "--bench" args in
  let quick = List.mem "--quick" args in
  let keyed key =
    List.fold_left
      (fun acc a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = key ->
            Some (String.sub a (i + 1) (String.length a - i - 1))
        | _ -> acc)
      None args
  in
  let jobs =
    match keyed "--jobs" with Some s -> int_of_string s | None -> 4
  in
  let json_path = keyed "--json" in
  if not bench_only then begin
    Fmt.pr "=== Reproduction harness: every figure/experiment of the paper \
            ===@.";
    let profile =
      if quick then Vv_exec.Campaign.Smoke else Vv_exec.Campaign.Full
    in
    Vv_analysis.Experiments.run_all ~profile ()
  end;
  if not tables_only then begin
    if quick then begin
      memo_timing ~ng:16 ~t_max:2 ~reps:2 ();
      par_timing ~jobs ~trials:2_000 ();
      chaos_timing ~trials:2 ()
    end
    else begin
      memo_timing ();
      par_timing ~jobs ();
      chaos_timing ()
    end;
    benches ~quick ?json_path ()
  end
