(* Compare two bench JSON files (as written by `bench/main.exe --json=...`:
   an array of {name, ns_per_run, runs} records) and fail on regressions.

   Usage: diff.exe BASELINE CURRENT [--tolerance=0.25]

   A row regresses when its ns_per_run exceeds the baseline's by more than
   the relative tolerance (default 25%).  Rows present only in the current
   run are reported but never fail (new benchmarks need no baseline yet);
   rows present only in the baseline fail, so a renamed or dropped
   benchmark forces a deliberate baseline regeneration.  Exit status: 0
   when clean, 1 on any regression or missing row, 2 on usage/parse
   errors. *)

module Json = Vv_prelude.Json

let read_rows path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  match Json.of_string body with
  | Error msg -> Error (Printf.sprintf "%s: parse error: %s" path msg)
  | Ok (Json.List entries) -> (
      try
        Ok
          (List.map
             (fun entry ->
               match entry with
               | Json.Obj fields ->
                   let name =
                     match List.assoc_opt "name" fields with
                     | Some (Json.String s) -> s
                     | _ -> failwith "row without a name"
                   in
                   let ns =
                     match List.assoc_opt "ns_per_run" fields with
                     | Some (Json.Float v) -> Some v
                     | Some (Json.Int v) -> Some (float_of_int v)
                     | Some Json.Null | None -> None
                     | Some _ -> failwith "ns_per_run is not a number"
                   in
                   (name, ns)
               | _ -> failwith "row is not an object")
             entries)
      with Failure msg -> Error (Printf.sprintf "%s: %s" path msg))
  | Ok _ -> Error (Printf.sprintf "%s: expected a top-level array" path)

let () =
  let args = Array.to_list Sys.argv in
  let tolerance = ref 0.25 in
  let files = ref [] in
  List.iter
    (fun a ->
      if a = Sys.argv.(0) then ()
      else
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = "--tolerance" ->
            let v = String.sub a (i + 1) (String.length a - i - 1) in
            tolerance := float_of_string v
        | _ -> files := a :: !files)
    args;
  match List.rev !files with
  | [ baseline_path; current_path ] -> (
      match (read_rows baseline_path, read_rows current_path) with
      | Error msg, _ | _, Error msg ->
          prerr_endline msg;
          exit 2
      | Ok baseline, Ok current ->
          let failures = ref 0 in
          Printf.printf "%-50s %12s %12s %9s\n" "benchmark" "baseline-ns"
            "current-ns" "ratio";
          List.iter
            (fun (name, base_ns) ->
              match (base_ns, List.assoc_opt name current) with
              | _, None ->
                  incr failures;
                  Printf.printf "%-50s %12s %12s %9s  MISSING\n" name "-" "-"
                    "-"
              | None, Some _ ->
                  (* No baseline estimate (n/a row): nothing to gate on. *)
                  ()
              | Some b, Some None ->
                  incr failures;
                  Printf.printf "%-50s %12.1f %12s %9s  NO-ESTIMATE\n" name b
                    "n/a" "-"
              | Some b, Some (Some c) ->
                  let ratio = if b > 0.0 then c /. b else Float.infinity in
                  let regressed = ratio > 1.0 +. !tolerance in
                  if regressed then incr failures;
                  Printf.printf "%-50s %12.1f %12.1f %9.2f%s\n" name b c ratio
                    (if regressed then "  REGRESSION" else ""))
            baseline;
          List.iter
            (fun (name, _) ->
              if not (List.mem_assoc name baseline) then
                Printf.printf "%-50s %12s (new benchmark, not gated)\n" name
                  "-")
            current;
          if !failures > 0 then begin
            Printf.printf
              "\n%d benchmark(s) regressed beyond %.0f%% or went missing.\n"
              !failures
              (!tolerance *. 100.0);
            exit 1
          end
          else
            Printf.printf "\nAll benchmarks within %.0f%% of the baseline.\n"
              (!tolerance *. 100.0))
  | _ ->
      prerr_endline
        "usage: diff.exe BASELINE.json CURRENT.json [--tolerance=0.25]";
      exit 2
